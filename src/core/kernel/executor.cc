#include "core/kernel/executor.hh"

#include "common/fixed_point.hh"
#include "common/logging.hh"

namespace eie::core::kernel {

namespace {

/**
 * Per-pass activation panel: the active (non-zero) frames of each
 * column, gathered once per tile instead of once per PE per frame.
 * Column j's active frames occupy slots [j*B, j*B + count[j]).
 */
struct ActivationPanel
{
    std::vector<std::uint32_t> frame; ///< frame index of each slot
    std::vector<std::int64_t> value;  ///< activation value of the slot
    std::vector<std::uint32_t> count; ///< active frames per column

    void
    gather(const Batch &inputs, std::size_t col_begin,
           std::size_t col_end)
    {
        const std::size_t cols = col_end - col_begin;
        const std::size_t batch = inputs.size();
        frame.resize(cols * batch);
        value.resize(cols * batch);
        count.assign(cols, 0);
        for (std::size_t j = 0; j < cols; ++j) {
            std::uint32_t n = 0;
            const std::size_t base = j * batch;
            for (std::size_t b = 0; b < batch; ++b) {
                const std::int64_t a = inputs[b][col_begin + j];
                if (a == 0)
                    continue; // the LNZD would never broadcast it
                frame[base + n] = static_cast<std::uint32_t>(b);
                value[base + n] = a;
                ++n;
            }
            count[j] = n;
        }
    }
};

/** Sweep one PE slice of one tile over the gathered panel. */
void
runSlice(const CompiledSlice &slice, const ActivationPanel &panel,
         std::size_t batch, std::int64_t *acc,
         const FixedFormat &weight_fmt, const FixedFormat &act_fmt)
{
    const KernelEntry *entries = slice.entries.data();
    const std::size_t cols = slice.col_ptr.size() - 1;
    for (std::size_t j = 0; j < cols; ++j) {
        const std::uint32_t n_active = panel.count[j];
        if (n_active == 0)
            continue;
        const std::uint32_t e_begin = slice.col_ptr[j];
        const std::uint32_t e_end = slice.col_ptr[j + 1];
        if (e_begin == e_end)
            continue;
        const std::uint32_t *frames = &panel.frame[j * batch];
        const std::int64_t *values = &panel.value[j * batch];
        for (std::uint32_t e = e_begin; e < e_end; ++e) {
            const std::int64_t w = entries[e].weight_raw;
            std::int64_t *acc_row =
                acc + static_cast<std::size_t>(entries[e].row) * batch;
            for (std::uint32_t t = 0; t < n_active; ++t) {
                acc_row[frames[t]] = macFixed(
                    acc_row[frames[t]], w, values[t], weight_fmt,
                    act_fmt);
            }
        }
    }
}

} // namespace

Batch
runBatch(const CompiledLayer &layer, const Batch &inputs,
         WorkerPool *pool)
{
    const std::size_t batch = inputs.size();
    panic_if(!layer.has_host_stream,
             "layer '%s' compiled without the host kernel arrays "
             "(CompileOptions::host_stream)", layer.name.c_str());
    for (const auto &input : inputs)
        panic_if(input.size() != layer.input_size,
                 "input length %zu != compiled %zu", input.size(),
                 layer.input_size);

    Batch outputs(batch);
    for (auto &output : outputs)
        output.assign(layer.output_size, 0);
    if (batch == 0)
        return outputs;

    ActivationPanel panel;
    std::vector<std::int64_t> acc;
    for (const auto &batch_tiles : layer.tiles) {
        panic_if(batch_tiles.empty(), "row batch with no tiles");
        const std::size_t row_begin = batch_tiles.front().row_begin;
        const std::size_t row_end = batch_tiles.front().row_end;

        // Accumulators zero per row batch, persisting across passes —
        // frame-major per row so a PE's writes stay in its own rows.
        acc.assign((row_end - row_begin) * batch, 0);

        for (const CompiledTile &tile : batch_tiles) {
            panel.gather(inputs, tile.col_begin, tile.col_end);
            auto run_pe = [&](std::size_t k) {
                runSlice(tile.slices[k], panel, batch, acc.data(),
                         layer.weight_format, layer.act_format);
            };
            if (pool && pool->threads() > 1)
                pool->parallelFor(tile.slices.size(), run_pe);
            else
                for (std::size_t k = 0; k < tile.slices.size(); ++k)
                    run_pe(k);
        }

        // Drain: non-linearity, then commit the batch rows per frame.
        for (std::size_t r = 0; r < row_end - row_begin; ++r) {
            const std::int64_t *acc_row = &acc[r * batch];
            for (std::size_t b = 0; b < batch; ++b) {
                std::int64_t value = acc_row[b];
                switch (layer.nonlin) {
                  case nn::Nonlinearity::ReLU:
                    value = reluRaw(value);
                    break;
                  case nn::Nonlinearity::None:
                    break;
                  default:
                    fatal("the accelerator only applies ReLU or None; "
                          "other nonlinearities run on the host");
                }
                outputs[b][row_begin + r] = value;
            }
        }
    }
    return outputs;
}

} // namespace eie::core::kernel
