#include "core/kernel/compiled_layer.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace eie::core::kernel {

namespace {

/**
 * Merge the per-PE streams of @p tile into one slice-fused stream:
 * per column, the entries of every slice concatenated and sorted by
 * row. Entries of a column hit distinct accumulator rows (PE k owns
 * rows i mod N == k, one CSC entry per (row, col)), so any per-column
 * order yields the exact saturating-MAC sequence of the per-slice
 * walk; sorting keeps the accumulator writes ascending for locality.
 */
SliceStream
fuseSlices(const CompiledTile &tile)
{
    SliceStream fused;
    panic_if(tile.slices.empty(), "tile with no slices");
    const std::size_t cols = tile.slices.front().stream.col_ptr.size()
        ? tile.slices.front().stream.col_ptr.size() - 1
        : 0;

    std::size_t total = 0;
    for (const CompiledSlice &slice : tile.slices)
        total += slice.stream.entryCount();
    fused.rows.reserve(total);
    fused.weights.reserve(total);
    fused.col_ptr.reserve(cols + 1);
    fused.col_ptr.push_back(0);

    std::vector<std::pair<std::uint32_t, std::int32_t>> column;
    for (std::size_t j = 0; j < cols; ++j) {
        column.clear();
        for (const CompiledSlice &slice : tile.slices) {
            const SliceStream &s = slice.stream;
            for (std::uint32_t e = s.col_ptr[j]; e < s.col_ptr[j + 1];
                 ++e)
                column.emplace_back(s.rows[e], s.weights[e]);
        }
        std::sort(column.begin(), column.end());
        for (const auto &[row, weight] : column) {
            fused.rows.push_back(row);
            fused.weights.push_back(weight);
        }
        fused.col_ptr.push_back(
            static_cast<std::uint32_t>(fused.rows.size()));
    }
    fused.buildPacked();
    return fused;
}

/** Resident bytes of one decoded SoA stream. */
std::uint64_t
streamBytes(const SliceStream &stream)
{
    return (stream.rows.size() + stream.packed.size() +
            stream.col_ptr.size()) *
        sizeof(std::uint32_t) +
        stream.weights.size() * sizeof(std::int32_t);
}

/**
 * Estimated decoded stream footprint of @p plan, for Auto residency:
 * real entries times the SoA cost per entry (rows + weights + packed
 * mirror), doubled when the fused stream would be built. Column
 * pointers are ignored — entry storage dominates at any size where
 * the threshold matters.
 */
std::uint64_t
estimatedDecodedBytes(const LayerPlan &plan, bool fused)
{
    std::uint64_t entries = 0;
    for (const auto &batch_tiles : plan.tiles)
        for (const Tile &tile : batch_tiles)
            entries += tile.storage.realEntries();
    return entries * 12 * (fused ? 2 : 1);
}

} // namespace

const char *
residencyName(Residency residency)
{
    switch (residency) {
      case Residency::Decoded:
        return "decoded";
      case Residency::Compressed:
        return "compressed";
      case Residency::Auto:
        return "auto";
    }
    panic("invalid residency %d", static_cast<int>(residency));
    return ""; // unreachable: panic() aborts
}

Residency
residencyFromName(const std::string &name)
{
    if (name == "decoded")
        return Residency::Decoded;
    if (name == "compressed")
        return Residency::Compressed;
    if (name == "auto")
        return Residency::Auto;
    fatal("unknown residency '%s' (known: decoded, compressed, auto)",
          name.c_str());
    return Residency::Decoded; // unreachable: fatal() exits
}

void
SliceStream::buildPacked()
{
    packed.clear();
    packed.reserve(rows.size());
    for (std::size_t e = 0; e < rows.size(); ++e) {
        const std::uint32_t row = rows[e];
        const std::int32_t weight = weights[e];
        if (row > 0xffff || weight < -0x8000 || weight > 0x7fff) {
            packed.clear();
            packed.shrink_to_fit();
            return; // out of 16-bit range: no packed mirror
        }
        packed.push_back(row << 16 |
                         (static_cast<std::uint32_t>(weight) & 0xffffu));
    }
}

std::vector<SimEntry>
decodeSimStream(const compress::PeSlice &slice,
                const std::vector<std::int64_t> &raw_lut)
{
    const auto &entries = slice.entries();
    const auto &col_ptr = slice.colPtr();
    std::vector<SimEntry> stream;
    stream.reserve(entries.size());
    for (std::size_t j = 0; j + 1 < col_ptr.size(); ++j) {
        // The PE's address-accumulation register restarts per column.
        std::int64_t row = -1;
        for (std::uint32_t e = col_ptr[j]; e < col_ptr[j + 1]; ++e) {
            const compress::CscEntry &entry = entries[e];
            row += entry.zero_count + 1;
            panic_if(entry.weight_index >= raw_lut.size(),
                     "codebook index %u out of %zu",
                     entry.weight_index, raw_lut.size());
            stream.push_back(SimEntry{
                static_cast<std::uint32_t>(row),
                static_cast<std::int32_t>(raw_lut[entry.weight_index]),
                entry.weight_index == 0});
        }
    }
    return stream;
}

CompiledLayer
CompiledLayer::compile(const LayerPlan &plan, const EieConfig &config,
                       const CompileOptions &options)
{
    panic_if(plan.n_pe != config.n_pe,
             "plan compiled for %u PEs, machine has %u", plan.n_pe,
             config.n_pe);

    // Auto residency resolves per layer: decoded below the LLC-scale
    // threshold, compressed above it.
    Residency residency = options.residency;
    if (residency == Residency::Auto)
        residency = estimatedDecodedBytes(plan, options.fused_stream) >=
                kAutoResidencyCompressBytes
            ? Residency::Compressed
            : Residency::Decoded;

    // Under compressed residency the compressed stream is the only
    // resident host form: the decoded/fused arrays are never built.
    const bool build_host =
        options.host_stream && residency != Residency::Compressed;
    const bool build_compressed = residency == Residency::Compressed ||
        (options.compressed_stream && options.host_stream);

    panic_if(!build_host && !options.sim_stream && !build_compressed,
             "compile with no stream selected");

    CompiledLayer layer;
    layer.name = plan.name;
    layer.input_size = plan.input_size;
    layer.output_size = plan.output_size;
    layer.nonlin = plan.nonlin;
    layer.n_pe = plan.n_pe;
    layer.act_format = config.act_format;
    layer.weight_format = config.weight_format;
    layer.has_host_stream = build_host;
    layer.has_fused_stream = build_host && options.fused_stream;
    layer.has_sim_stream = options.sim_stream;
    layer.has_compressed_stream = build_compressed;
    layer.residency = residency;

    for (const auto &batch_tiles : plan.tiles) {
        std::vector<CompiledTile> row_tiles;
        for (const Tile &tile : batch_tiles) {
            CompiledTile compiled;
            compiled.row_begin = tile.row_begin;
            compiled.row_end = tile.row_end;
            compiled.col_begin = tile.col_begin;
            compiled.col_end = tile.col_end;

            const auto &storage = tile.storage;
            const auto &raw_lut = storage.codebook().rawValues();
            compiled.slices.resize(plan.n_pe);
            for (unsigned k = 0; k < plan.n_pe; ++k) {
                const compress::PeSlice &pe = storage.pe(k);
                CompiledSlice &slice = compiled.slices[k];
                slice.local_rows = pe.localRows();
                if (build_host || build_compressed) {
                    const auto image = pe.exportDecoded();
                    if (build_host) {
                        SliceStream &stream = slice.stream;
                        stream.col_ptr = image.col_ptr;
                        stream.rows.reserve(image.local_rows.size());
                        stream.weights.reserve(
                            image.local_rows.size());
                        for (std::size_t e = 0;
                             e < image.local_rows.size(); ++e) {
                            // Batch-local global row: the
                            // interleaving law of §III-B, rebased to
                            // the tile's row range.
                            stream.rows.push_back(
                                image.local_rows[e] * plan.n_pe + k);
                            stream.weights.push_back(
                                static_cast<std::int32_t>(
                                    raw_lut[image.weight_indices[e]]));
                        }
                        stream.buildPacked();
                        layer.decoded_stream_bytes +=
                            streamBytes(stream);
                    }
                    if (build_compressed) {
                        slice.compressed =
                            CompressedSliceStream::encode(
                                image, raw_lut, plan.n_pe, k,
                                pe.localRows());
                        layer.compressed_stream_bytes +=
                            slice.compressed.byteSize();
                    }
                }
                if (options.sim_stream) {
                    slice.sim_entries = decodeSimStream(pe, raw_lut);
                    slice.sim_col_ptr = pe.colPtr();
                }
                compiled.total_entries += pe.totalEntries();
                layer.real_entries +=
                    pe.totalEntries() - pe.paddingEntries();
                layer.stripped_padding += pe.paddingEntries();
            }
            if (layer.has_fused_stream) {
                compiled.fused = fuseSlices(compiled);
                layer.decoded_stream_bytes +=
                    streamBytes(compiled.fused);
            }
            row_tiles.push_back(std::move(compiled));
        }
        layer.tiles.push_back(std::move(row_tiles));
    }
    return layer;
}

} // namespace eie::core::kernel
