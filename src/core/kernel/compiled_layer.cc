#include "core/kernel/compiled_layer.hh"

#include "common/logging.hh"

namespace eie::core::kernel {

CompiledLayer
CompiledLayer::compile(const LayerPlan &plan, const EieConfig &config)
{
    panic_if(plan.n_pe != config.n_pe,
             "plan compiled for %u PEs, machine has %u", plan.n_pe,
             config.n_pe);

    CompiledLayer layer;
    layer.name = plan.name;
    layer.input_size = plan.input_size;
    layer.output_size = plan.output_size;
    layer.nonlin = plan.nonlin;
    layer.n_pe = plan.n_pe;
    layer.act_format = config.act_format;
    layer.weight_format = config.weight_format;

    for (const auto &batch_tiles : plan.tiles) {
        std::vector<CompiledTile> row_tiles;
        for (const Tile &tile : batch_tiles) {
            CompiledTile compiled;
            compiled.row_begin = tile.row_begin;
            compiled.row_end = tile.row_end;
            compiled.col_begin = tile.col_begin;
            compiled.col_end = tile.col_end;

            const auto &storage = tile.storage;
            const auto &raw_lut = storage.codebook().rawValues();
            compiled.slices.resize(plan.n_pe);
            for (unsigned k = 0; k < plan.n_pe; ++k) {
                const auto image = storage.pe(k).exportDecoded();
                CompiledSlice &slice = compiled.slices[k];
                slice.col_ptr = image.col_ptr;
                slice.entries.reserve(image.local_rows.size());
                for (std::size_t e = 0; e < image.local_rows.size();
                     ++e) {
                    // Batch-local global row: the interleaving law of
                    // §III-B, rebased to the tile's row range.
                    slice.entries.push_back(KernelEntry{
                        image.local_rows[e] * plan.n_pe + k,
                        static_cast<std::int32_t>(
                            raw_lut[image.weight_indices[e]])});
                }
                layer.real_entries += slice.entries.size();
                layer.stripped_padding +=
                    storage.pe(k).paddingEntries();
            }
            row_tiles.push_back(std::move(compiled));
        }
        layer.tiles.push_back(std::move(row_tiles));
    }
    return layer;
}

} // namespace eie::core::kernel
