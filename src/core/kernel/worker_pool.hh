/**
 * @file
 * A small persistent worker pool for PE-parallel kernel execution.
 *
 * The compiled execution path parallelizes across PE slices: PE k owns
 * exactly the output rows i with i mod N == k, so concurrent slice
 * execution never writes the same accumulator — races are impossible
 * by construction, mirroring the hardware's per-PE register files.
 * The pool exists so a multi-layer batched inference spawns its
 * threads once, not once per layer call.
 */

#ifndef EIE_CORE_KERNEL_WORKER_POOL_HH
#define EIE_CORE_KERNEL_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eie::core::kernel {

/** Persistent thread pool executing index-space parallel-for jobs. */
class WorkerPool
{
  public:
    /**
     * @param threads total workers including the calling thread; the
     *                pool spawns threads-1 helpers. 0 is treated as 1
     *                (purely caller-executed, no threads spawned).
     */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total workers including the caller. */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, count). The caller participates;
     * indices are claimed dynamically so unbalanced PE slices spread
     * across workers. Returns when every index has finished.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /** Hardware concurrency with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();
    void drain(const std::function<void(std::size_t)> &fn,
               std::size_t count);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t job_count_ = 0;
    std::size_t next_index_ = 0; ///< guarded by mutex_
    std::uint64_t generation_ = 0;
    unsigned active_ = 0;
    bool stop_ = false;
};

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_WORKER_POOL_HH
