/**
 * @file
 * Arithmetic Unit (§IV, §VI): performs b_x = b_x + v * a_j, where v is
 * the 4-bit encoded weight expanded to 16-bit fixed point via the
 * codebook, and x indexes the destination-activation register file.
 *
 * Timing follows the paper's 4-stage pipeline: (1) codebook lookup +
 * address accumulation, (2) destination read + multiply, (3) shift and
 * add, (4) destination write. "A bypass path is provided to route the
 * output of the adder to its input if the same accumulator is selected
 * on two adjacent cycles"; with the bypass enabled (plus regfile
 * write-forwarding) back-to-back same-accumulator updates never stall.
 * The ablation configuration disables the bypass, in which case an
 * issue must wait until an in-flight update to the same accumulator
 * retires.
 *
 * Because the forwarding network makes pipelined execution
 * semantically identical to sequential execution, the accumulator
 * values are applied at issue time (bit-exact, same order as the
 * functional model); the pipeline state tracks occupancy for timing.
 */

#ifndef EIE_CORE_ARITH_HH
#define EIE_CORE_ARITH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "compress/codebook.hh"
#include "core/config.hh"
#include "sim/stats.hh"

namespace eie::core {

/** 4-stage MAC pipeline plus the destination accumulator file. */
class ArithmeticUnit
{
  public:
    ArithmeticUnit(const EieConfig &config, sim::StatGroup &stats);

    /**
     * Start a row batch: size and zero the accumulator file
     * ("accumulators are initialized to zero", §III-C).
     *
     * @param rows_this_pe local output rows this PE owns in the batch
     */
    void configureBatch(std::uint32_t rows_this_pe);

    /**
     * Latch the decode stage's weight LUT — the codebook's
     * materialized raw values (Codebook::rawValues()), loaded once per
     * tile like the hardware's codebook registers, instead of a
     * decodeRaw() call per issued entry. The codebook must outlive
     * the tile's execution.
     */
    void loadCodebook(const compress::Codebook &codebook);

    /** Hazard check: can an update to @p local_row issue this cycle? */
    bool canIssue(std::uint32_t local_row) const;

    /**
     * Issue one multiply-accumulate. Applies the value update
     * immediately (issue order = architectural order) and occupies
     * the pipeline for timing.
     *
     * @param weight_index 4-bit codebook index (0 = padding zero)
     * @param local_row    destination accumulator index
     * @param act_raw      broadcast activation value (raw fixed)
     */
    void issue(std::uint8_t weight_index, std::uint32_t local_row,
               std::int64_t act_raw);

    /**
     * Pre-decoded issue: the hot path of the kernel-format simulator
     * stream. Identical timing and architectural effect to issue(),
     * but the codebook lookup already happened at compile time.
     *
     * @param weight_raw codebook-decoded weight (weight_format raw)
     * @param local_row  destination accumulator index
     * @param act_raw    broadcast activation value (raw fixed)
     * @param is_padding entry was a codebook-index-0 padding slot
     */
    void issueRaw(std::int64_t weight_raw, std::uint32_t local_row,
                  std::int64_t act_raw, bool is_padding);

    /** True when no update is in flight (safe to drain/read out). */
    bool pipelineEmpty() const;

    /** Clock edge: advance the pipeline. */
    void tick();

    /** Apply ReLU to every accumulator (drain path, Figure 4b). */
    void applyRelu();

    /** Architectural accumulator values. */
    const std::vector<std::int64_t> &accumulators() const { return acc_; }

  private:
    FixedFormat act_fmt_;
    FixedFormat weight_fmt_;
    bool bypass_;

    /** Decode-stage LUT: the loaded codebook's raw values. */
    const std::int64_t *decode_lut_ = nullptr;
    std::size_t decode_lut_size_ = 0;

    std::vector<std::int64_t> acc_;
    /** Rows of the updates in stages S2..S4 (-1 = bubble). An issue
     *  enters S2 the cycle after issue; the S4 write retires at the
     *  third tick. */
    std::array<std::int32_t, 3> inflight_{-1, -1, -1};

    sim::Counter &macs_;
    sim::Counter &padding_macs_;
};

} // namespace eie::core

#endif // EIE_CORE_ARITH_HH
