/**
 * @file
 * The EIE compiler/scheduler: maps a compressed FC layer onto an EIE
 * configuration as a grid of tiles.
 *
 * Two structural limits force tiling (§IV, §VII-C "Flexibility"):
 *
 *  - Row batches: each PE accumulates at most regfile_entries output
 *    activations per batch (64 in the paper — 4K outputs across
 *    64 PEs). Layers with more outputs (NT-Wd: 8791) run as several
 *    batches; the input is re-scanned per batch and results drain to
 *    the activation SRAM between batches.
 *  - Column passes: each PE's pointer SRAM holds ptr_capacity 16-bit
 *    pointers; layers with more input columns (VGG-6: 25088) run as
 *    several passes over column ranges, accumulators persisting
 *    across passes. This is how "EIE is still able to execute them
 *    with 64 PEs".
 *
 * Each tile is independently encoded in the interleaved CSC format
 * (rows rebased within the batch, columns within the pass), which is
 * the image the DMA would load in I/O mode.
 */

#ifndef EIE_CORE_PLAN_HH
#define EIE_CORE_PLAN_HH

#include <string>
#include <vector>

#include "compress/compressed_layer.hh"
#include "core/config.hh"
#include "nn/layer.hh"

namespace eie::core {

/** One row-batch x column-pass unit of accelerator work. */
struct Tile
{
    std::size_t row_begin = 0; ///< global output rows [row_begin,
    std::size_t row_end = 0;   ///<                     row_end)
    std::size_t col_begin = 0; ///< global input columns [col_begin,
    std::size_t col_end = 0;   ///<                       col_end)
    compress::InterleavedCsc storage; ///< per-PE SRAM image
};

/** A compiled layer: tiles[batch][pass]. */
struct LayerPlan
{
    std::string name;
    std::size_t input_size = 0;
    std::size_t output_size = 0;
    nn::Nonlinearity nonlin = nn::Nonlinearity::ReLU;
    unsigned n_pe = 0;
    std::vector<std::vector<Tile>> tiles;

    /** Number of row batches. */
    std::size_t batches() const { return tiles.size(); }

    /** Number of column passes per batch. */
    std::size_t
    passes() const
    {
        return tiles.empty() ? 0 : tiles.front().size();
    }

    /** Stored entries (incl. padding) summed over all tiles. */
    std::uint64_t totalEntries() const;

    /** Padding entries summed over all tiles. */
    std::uint64_t paddingEntries() const;

    /** Figure 12's real-work ratio for the whole plan. */
    double realWorkRatio() const;
};

/**
 * Compile @p layer for @p config.
 *
 * @param layer   the compressed layer (weights already quantised)
 * @param nonlin  non-linearity the accelerator applies on drain
 *                (ReLU in hardware; None for LSTM pre-activations,
 *                whose gates run on the host)
 */
LayerPlan planLayer(const compress::CompressedLayer &layer,
                    nn::Nonlinearity nonlin, const EieConfig &config);

/**
 * Compile a layer given directly as quantised weights plus the shared
 * codebook — the entry point for layers that do not come from the
 * in-process compression pipeline: models deserialised from EIEM
 * files (serve::ModelRegistry) and column-sliced sub-layers of a
 * sharded deployment (serve::ClusterEngine). @p quantized values must
 * already be codebook values; encoding maps each non-zero to its
 * nearest table entry, so re-encoding quantised weights is lossless.
 */
LayerPlan planLayer(std::string name, const nn::SparseMatrix &quantized,
                    const compress::Codebook &codebook,
                    nn::Nonlinearity nonlin, const EieConfig &config);

} // namespace eie::core

#endif // EIE_CORE_PLAN_HH
