/**
 * @file
 * Sparse Matrix Read Unit (§IV): streams this PE's (v, x) entries of
 * the active column out of the Spmat SRAM.
 *
 * The SRAM has a wide interface (64 bits in the paper = 8 entries per
 * row; Figure 9 sweeps 32..512 bits). "A single (v, x) entry is
 * provided to the arithmetic unit each cycle"; in the steady state the
 * SRAM is therefore accessed once every (width/8) cycles. The unit
 * holds a two-slot row buffer and prefetches the next needed row —
 * including across column boundaries and into the next queued column —
 * so the single read port sustains one entry per cycle.
 *
 * Entry rows are retained across column switches: when the broadcast
 * skips zero-activation columns, the next active column's entries
 * often sit in an already-fetched row (and conversely, wide rows
 * fetch entries that are wasted when the following column is skipped,
 * which is the Figure 9 waste effect).
 *
 * The data payload served is the pre-decoded kernel::SimEntry stream
 * of a CompiledLayer slice — zero runs resolved, weights decoded,
 * padding preserved — so the hot loop does no per-entry decode. All
 * timing (row residency, fetch schedule, buffer occupancy) is a pure
 * function of entry *indices* and therefore identical to walking the
 * raw 8-bit (v, z) image: one stored entry is one stored entry.
 */

#ifndef EIE_CORE_SPMAT_READ_HH
#define EIE_CORE_SPMAT_READ_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "core/kernel/compiled_layer.hh"
#include "sim/stats.hh"

namespace eie::core {

/** Wide-SRAM entry streamer with double row buffering. */
class SpmatReadUnit
{
  public:
    SpmatReadUnit(const EieConfig &config, sim::StatGroup &stats);

    /** Backdoor-load this PE's entry stream (I/O mode DMA), taking
     *  ownership of the decoded image. */
    void loadEntries(std::vector<kernel::SimEntry> entries);

    /**
     * Backdoor-load a borrowed stream (the zero-copy path: the
     * entries live in a CompiledLayer that outlives the run).
     */
    void loadStream(const kernel::SimEntry *entries, std::size_t count);

    /** Begin walking entries [begin, end) of the newly active column;
     *  evicts row-buffer slots that precede the new position. */
    void startColumn(std::uint32_t begin, std::uint32_t end);

    /** Entries remain to be consumed in the active column. */
    bool columnActive() const { return cur_ < end_; }

    /** The next entry's SRAM row is buffered (consumable this cycle). */
    bool entryReady() const;

    /** Look at the next entry; requires entryReady(). */
    kernel::SimEntry peekEntry() const;

    /** Consume the next entry; requires entryReady(). */
    void consumeEntry();

    /**
     * Per-cycle prefetch policy: issue at most one row fetch, keeping
     * the double buffer ahead of consumption, then spilling into the
     * next queued column once the current one is covered.
     *
     * @param next_known whether the front-end already knows the next
     *                   column's entry range
     * @param next_begin first entry index of that next column
     * @param next_end   one past its last entry index
     */
    void prefetch(bool next_known, std::uint32_t next_begin,
                  std::uint32_t next_end);

    /** Clock edge: land the in-flight row fetch. */
    void tick();

    /** Wide-row fetches performed (Figure 9's read count). */
    std::uint64_t rowFetches() const { return fetches_.value(); }

  private:
    std::int64_t rowOf(std::uint64_t entry) const;
    bool buffered(std::int64_t row) const;
    int freeSlot() const;
    void evictBefore(std::int64_t row);
    void tryFetch(std::int64_t row);

    unsigned entries_per_row_;
    std::vector<kernel::SimEntry> owned_;      ///< loadEntries() storage
    const kernel::SimEntry *stream_ = nullptr; ///< active stream view
    std::size_t stream_size_ = 0;
    std::uint32_t cur_ = 0;
    std::uint32_t end_ = 0;
    std::array<std::int64_t, 2> slot_{-1, -1}; ///< buffered row ids
    std::int64_t inflight_ = -1;               ///< row id being fetched

    sim::Counter &fetches_;
};

} // namespace eie::core

#endif // EIE_CORE_SPMAT_READ_HH
