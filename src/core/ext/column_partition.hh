/**
 * @file
 * The §VII-A partitioning ablation: the alternative "distribute
 * matrix COLUMNS to PEs" scheme the paper argues against.
 *
 * Under column partitioning, PE k owns columns j with j mod N == k;
 * it multiplies its columns by its locally-held activations, giving
 * full locality for the input vector a — but a PE whose activations
 * are zero sits completely idle (dynamic sparsity becomes load
 * imbalance instead of saved work), and the per-PE partial output
 * vectors must be summed by a cross-PE reduction.
 *
 * This model computes, for a given layer and input:
 *  - per-PE useful work (entries of owned columns with a_j != 0),
 *  - the compute-phase makespan (max over PEs at 1 entry/cycle),
 *  - the reduction cost: log2(N) stages, each streaming `rows`
 *    partial sums at `reduction_lanes` values per cycle,
 * and the same quantities for EIE's row-interleaved scheme (from its
 * per-PE entry counts), so bench/ablation_partitioning can print the
 * trade-off directly.
 */

#ifndef EIE_CORE_EXT_COLUMN_PARTITION_HH
#define EIE_CORE_EXT_COLUMN_PARTITION_HH

#include <cstdint>
#include <vector>

#include "nn/sparse.hh"
#include "nn/tensor.hh"

namespace eie::core::ext {

/** Outcome of the analytical column-partitioning execution. */
struct PartitionResult
{
    std::uint64_t compute_cycles = 0;   ///< makespan of the MAC phase
    std::uint64_t reduction_cycles = 0; ///< cross-PE sum (0 for rows)
    std::uint64_t total_entries = 0;    ///< useful MACs
    double load_balance = 0.0;          ///< mean/max per-PE work
    std::uint64_t idle_pes = 0;         ///< PEs with zero work

    std::uint64_t
    totalCycles() const
    {
        return compute_cycles + reduction_cycles;
    }
};

/** Analytical cost of the column-partitioned scheme. */
PartitionResult columnPartitionCost(const nn::SparseMatrix &weights,
                                    const nn::Vector &activations,
                                    unsigned n_pe,
                                    unsigned reduction_lanes = 4);

/** Same metrics for EIE's row-interleaved scheme (no reduction; the
 *  broadcast is pipelined and off the critical path, §VII-B). */
PartitionResult rowPartitionCost(const nn::SparseMatrix &weights,
                                 const nn::Vector &activations,
                                 unsigned n_pe);

} // namespace eie::core::ext

#endif // EIE_CORE_EXT_COLUMN_PARTITION_HH
