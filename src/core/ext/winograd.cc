#include "core/ext/winograd.hh"

#include "core/functional.hh"
#include "core/plan.hh"

namespace eie::core::ext {

namespace {

// F(2x2, 3x3) transform matrices (Lavin [33]).
constexpr double BT[4][4] = {
    {1, 0, -1, 0}, {0, 1, 1, 0}, {0, -1, 1, 0}, {0, 1, 0, -1}};
constexpr double G[4][3] = {
    {1, 0, 0}, {0.5, 0.5, 0.5}, {0.5, -0.5, 0.5}, {0, 0, 1}};
constexpr double AT[2][4] = {{1, 1, 1, 0}, {0, 1, -1, -1}};

/** U = G g G^T for one 3x3 kernel. */
std::array<double, 16>
transformKernel(const Conv3x3Kernels &kernels, std::size_t co,
                std::size_t ci)
{
    double gg[4][3]; // G g
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 3; ++c) {
            gg[r][c] = 0.0;
            for (int k = 0; k < 3; ++k)
                gg[r][c] += G[r][k] *
                    kernels.at(co, ci, static_cast<std::size_t>(k),
                               static_cast<std::size_t>(c));
        }
    std::array<double, 16> u{};
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c) {
            double acc = 0.0;
            for (int k = 0; k < 3; ++k)
                acc += gg[r][k] * G[c][k]; // (G g) G^T
            u[static_cast<std::size_t>(4 * r + c)] = acc;
        }
    return u;
}

/** V = B^T d B for one 4x4 input tile (d given row-major). */
std::array<double, 16>
transformInputTile(const double d[4][4])
{
    double bd[4][4]; // B^T d
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c) {
            bd[r][c] = 0.0;
            for (int k = 0; k < 4; ++k)
                bd[r][c] += BT[r][k] * d[k][c];
        }
    std::array<double, 16> v{};
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c) {
            double acc = 0.0;
            for (int k = 0; k < 4; ++k)
                acc += bd[r][k] * BT[c][k]; // (B^T d) B
            v[static_cast<std::size_t>(4 * r + c)] = acc;
        }
    return v;
}

/** Y = A^T m A for one 4x4 element-product tile. */
std::array<double, 4>
transformOutputTile(const std::array<double, 16> &m)
{
    double am[2][4]; // A^T m
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 4; ++c) {
            am[r][c] = 0.0;
            for (int k = 0; k < 4; ++k)
                am[r][c] +=
                    AT[r][k] * m[static_cast<std::size_t>(4 * k + c)];
        }
    std::array<double, 4> y{};
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c) {
            double acc = 0.0;
            for (int k = 0; k < 4; ++k)
                acc += am[r][k] * AT[c][k]; // (A^T m) A
            y[static_cast<std::size_t>(2 * r + c)] = acc;
        }
    return y;
}

} // namespace

FeatureMap
directConv3x3(const Conv3x3Kernels &kernels, const FeatureMap &input)
{
    panic_if(input.channels() != kernels.in_channels,
             "input has %zu channels, kernels expect %zu",
             input.channels(), kernels.in_channels);
    panic_if(input.height() < 3 || input.width() < 3,
             "input too small for a 3x3 convolution");

    FeatureMap out(kernels.out_channels, input.height() - 2,
                   input.width() - 2);
    for (std::size_t co = 0; co < kernels.out_channels; ++co)
        for (std::size_t y = 0; y + 2 < input.height(); ++y)
            for (std::size_t x = 0; x + 2 < input.width(); ++x) {
                double acc = 0.0;
                for (std::size_t ci = 0; ci < kernels.in_channels;
                     ++ci)
                    for (std::size_t ky = 0; ky < 3; ++ky)
                        for (std::size_t kx = 0; kx < 3; ++kx)
                            acc += kernels.at(co, ci, ky, kx) *
                                input.at(ci, y + ky, x + kx);
                out.at(co, y, x) = static_cast<float>(acc);
            }
    return out;
}

WinogradConv3x3::WinogradConv3x3(const Conv3x3Kernels &kernels,
                                 const compress::CompressionOptions &opts)
    : out_channels_(kernels.out_channels),
      in_channels_(kernels.in_channels)
{
    // Build the 16 Cout x Cin matrices U_k.
    for (int k = 0; k < 16; ++k) {
        nn::SparseMatrix uk(out_channels_, in_channels_);
        // Column-major insertion to respect the ascending-row rule.
        std::vector<std::vector<std::pair<std::size_t, float>>> cols(
            in_channels_);
        for (std::size_t co = 0; co < out_channels_; ++co)
            for (std::size_t ci = 0; ci < in_channels_; ++ci) {
                const auto u = transformKernel(kernels, co, ci);
                const auto value = static_cast<float>(
                    u[static_cast<std::size_t>(k)]);
                if (value != 0.0f)
                    cols[ci].emplace_back(co, value);
            }
        for (std::size_t ci = 0; ci < in_channels_; ++ci)
            for (const auto &[row, value] : cols[ci])
                uk.insert(row, ci, value);
        u_.push_back(std::make_unique<compress::CompressedLayer>(
            compress::CompressedLayer::compress(
                "winograd_u" + std::to_string(k), uk, opts)));
    }
}

FeatureMap
WinogradConv3x3::forward(const FeatureMap &input) const
{
    panic_if(input.channels() != in_channels_,
             "input has %zu channels, conv expects %zu",
             input.channels(), in_channels_);
    const std::size_t out_h = input.height() - 2;
    const std::size_t out_w = input.width() - 2;
    panic_if(out_h % 2 != 0 || out_w % 2 != 0,
             "F(2x2,3x3) needs even output dimensions (got %zux%zu)",
             out_h, out_w);

    FeatureMap out(out_channels_, out_h, out_w);
    for (std::size_t ty = 0; ty < out_h / 2; ++ty) {
        for (std::size_t tx = 0; tx < out_w / 2; ++tx) {
            // Transform the tile of every input channel.
            std::vector<std::array<double, 16>> v(in_channels_);
            for (std::size_t ci = 0; ci < in_channels_; ++ci) {
                double d[4][4];
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        d[r][c] = input.at(
                            ci, 2 * ty + static_cast<std::size_t>(r),
                            2 * tx + static_cast<std::size_t>(c));
                v[ci] = transformInputTile(d);
            }

            // 16 M×V channel reductions.
            std::vector<std::array<double, 16>> m(out_channels_);
            for (int k = 0; k < 16; ++k) {
                nn::Vector vk(in_channels_);
                for (std::size_t ci = 0; ci < in_channels_; ++ci)
                    vk[ci] = static_cast<float>(
                        v[ci][static_cast<std::size_t>(k)]);
                const nn::Vector mk = u_[static_cast<std::size_t>(k)]
                    ->quantizedWeights().spmv(vk);
                for (std::size_t co = 0; co < out_channels_; ++co)
                    m[co][static_cast<std::size_t>(k)] = mk[co];
            }

            // Inverse transform per output channel.
            for (std::size_t co = 0; co < out_channels_; ++co) {
                const auto y = transformOutputTile(m[co]);
                out.at(co, 2 * ty, 2 * tx) = static_cast<float>(y[0]);
                out.at(co, 2 * ty, 2 * tx + 1) =
                    static_cast<float>(y[1]);
                out.at(co, 2 * ty + 1, 2 * tx) =
                    static_cast<float>(y[2]);
                out.at(co, 2 * ty + 1, 2 * tx + 1) =
                    static_cast<float>(y[3]);
            }
        }
    }
    return out;
}

FeatureMap
WinogradConv3x3::forwardOnEie(const FeatureMap &input,
                              const EieConfig &config,
                              std::uint64_t *total_cycles) const
{
    panic_if(input.channels() != in_channels_,
             "input has %zu channels, conv expects %zu",
             input.channels(), in_channels_);
    const std::size_t out_h = input.height() - 2;
    const std::size_t out_w = input.width() - 2;
    panic_if(out_h % 2 != 0 || out_w % 2 != 0,
             "F(2x2,3x3) needs even output dimensions (got %zux%zu)",
             out_h, out_w);

    // Compile the 16 U matrices once.
    std::vector<LayerPlan> plans;
    plans.reserve(16);
    for (int k = 0; k < 16; ++k)
        plans.push_back(planLayer(*u_[static_cast<std::size_t>(k)],
                                  nn::Nonlinearity::None, config));
    const Accelerator accel(config);
    const FunctionalModel functional(config);

    FeatureMap out(out_channels_, out_h, out_w);
    for (std::size_t ty = 0; ty < out_h / 2; ++ty) {
        for (std::size_t tx = 0; tx < out_w / 2; ++tx) {
            std::vector<std::array<double, 16>> v(in_channels_);
            for (std::size_t ci = 0; ci < in_channels_; ++ci) {
                double d[4][4];
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        d[r][c] = input.at(
                            ci, 2 * ty + static_cast<std::size_t>(r),
                            2 * tx + static_cast<std::size_t>(c));
                v[ci] = transformInputTile(d);
            }

            std::vector<std::array<double, 16>> m(out_channels_);
            for (int k = 0; k < 16; ++k) {
                nn::Vector vk(in_channels_);
                for (std::size_t ci = 0; ci < in_channels_; ++ci)
                    vk[ci] = static_cast<float>(
                        v[ci][static_cast<std::size_t>(k)]);
                const auto result =
                    accel.run(plans[static_cast<std::size_t>(k)],
                              functional.quantizeInput(vk));
                const nn::Vector mk =
                    functional.dequantize(result.output_raw);
                for (std::size_t co = 0; co < out_channels_; ++co)
                    m[co][static_cast<std::size_t>(k)] = mk[co];
                if (total_cycles)
                    *total_cycles += result.stats.cycles;
            }

            for (std::size_t co = 0; co < out_channels_; ++co) {
                const auto y = transformOutputTile(m[co]);
                out.at(co, 2 * ty, 2 * tx) = static_cast<float>(y[0]);
                out.at(co, 2 * ty, 2 * tx + 1) =
                    static_cast<float>(y[1]);
                out.at(co, 2 * ty + 1, 2 * tx) =
                    static_cast<float>(y[2]);
                out.at(co, 2 * ty + 1, 2 * tx + 1) =
                    static_cast<float>(y[3]);
            }
        }
    }
    return out;
}

} // namespace eie::core::ext
