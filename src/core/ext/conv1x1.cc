#include "core/ext/conv1x1.hh"

#include "core/functional.hh"

namespace eie::core::ext {

Conv1x1::Conv1x1(const compress::CompressedLayer &layer) : layer_(&layer)
{}

FeatureMap
Conv1x1::forward(const FeatureMap &input) const
{
    panic_if(input.channels() != inChannels(),
             "input has %zu channels, conv expects %zu",
             input.channels(), inChannels());
    FeatureMap out(outChannels(), input.height(), input.width());
    const auto &w = layer_->quantizedWeights();
    for (std::size_t y = 0; y < input.height(); ++y) {
        for (std::size_t x = 0; x < input.width(); ++x) {
            nn::Vector pixel(inChannels());
            for (std::size_t c = 0; c < inChannels(); ++c)
                pixel[c] = input.at(c, y, x);
            const nn::Vector result = nn::relu(w.spmv(pixel));
            for (std::size_t c = 0; c < outChannels(); ++c)
                out.at(c, y, x) = result[c];
        }
    }
    return out;
}

FeatureMap
Conv1x1::forwardOnEie(const FeatureMap &input, const EieConfig &config,
                      RunStats *total_stats) const
{
    panic_if(input.channels() != inChannels(),
             "input has %zu channels, conv expects %zu",
             input.channels(), inChannels());

    const auto plan =
        planLayer(*layer_, nn::Nonlinearity::ReLU, config);
    const Accelerator accel(config);
    const FunctionalModel functional(config);

    FeatureMap out(outChannels(), input.height(), input.width());
    for (std::size_t y = 0; y < input.height(); ++y) {
        for (std::size_t x = 0; x < input.width(); ++x) {
            nn::Vector pixel(inChannels());
            for (std::size_t c = 0; c < inChannels(); ++c)
                pixel[c] = input.at(c, y, x);

            const auto result =
                accel.run(plan, functional.quantizeInput(pixel));
            const nn::Vector values =
                functional.dequantize(result.output_raw);
            for (std::size_t c = 0; c < outChannels(); ++c)
                out.at(c, y, x) = values[c];

            if (total_stats) {
                total_stats->n_pe = result.stats.n_pe;
                total_stats->clock_ghz = result.stats.clock_ghz;
                total_stats->cycles += result.stats.cycles;
                total_stats->compute_cycles +=
                    result.stats.compute_cycles;
                total_stats->drain_cycles += result.stats.drain_cycles;
                total_stats->broadcasts += result.stats.broadcasts;
                total_stats->total_entries +=
                    result.stats.total_entries;
                total_stats->padding_entries +=
                    result.stats.padding_entries;
                total_stats->spmat_row_fetches +=
                    result.stats.spmat_row_fetches;
                total_stats->ptr_sram_reads +=
                    result.stats.ptr_sram_reads;
                total_stats->act_sram_reads +=
                    result.stats.act_sram_reads;
                total_stats->act_sram_writes +=
                    result.stats.act_sram_writes;
                total_stats->theoretical_cycles +=
                    result.stats.theoretical_cycles;
            }
        }
    }
    return out;
}

} // namespace eie::core::ext
