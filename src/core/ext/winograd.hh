/**
 * @file
 * 3x3 Winograd convolution on EIE (§VII-C): F(2x2, 3x3) transforms
 * each 4x4 input tile into 16 values; the convolution then becomes 16
 * independent channel-wise reductions — "for each Winograd patch the
 * 16 M×V can be scheduled on an EIE" — followed by the inverse
 * transform of the 2x2 output tile. Winograd saves 2.25x
 * multiplications over direct 3x3 convolution (36 multiplies per
 * 16-output-pixel... per 4-output-pixel tile vs 16).
 *
 * Transform matrices (Lavin [33]):
 *   B^T = [1  0 -1  0;  0 1 1 0;  0 -1 1 0;  0 1 0 -1]
 *   G   = [1 0 0;  1/2 1/2 1/2;  1/2 -1/2 1/2;  0 0 1]
 *   A^T = [1 1 1 0;  0 1 -1 -1]
 */

#ifndef EIE_CORE_EXT_WINOGRAD_HH
#define EIE_CORE_EXT_WINOGRAD_HH

#include <array>
#include <memory>

#include "compress/compressed_layer.hh"
#include "core/accelerator.hh"
#include "core/ext/feature_map.hh"
#include "nn/sparse.hh"

namespace eie::core::ext {

/** Dense 3x3 convolution kernels: weights[cout][cin][3][3]. */
struct Conv3x3Kernels
{
    std::size_t out_channels = 0;
    std::size_t in_channels = 0;
    std::vector<float> data; ///< [cout][cin][ky][kx]

    Conv3x3Kernels(std::size_t cout, std::size_t cin)
        : out_channels(cout), in_channels(cin),
          data(cout * cin * 9, 0.0f)
    {}

    float &
    at(std::size_t co, std::size_t ci, std::size_t ky, std::size_t kx)
    {
        return data[((co * in_channels + ci) * 3 + ky) * 3 + kx];
    }

    float
    at(std::size_t co, std::size_t ci, std::size_t ky,
       std::size_t kx) const
    {
        return data[((co * in_channels + ci) * 3 + ky) * 3 + kx];
    }
};

/** Direct (reference) 3x3 convolution, stride 1, no padding. */
FeatureMap directConv3x3(const Conv3x3Kernels &kernels,
                         const FeatureMap &input);

/** F(2x2, 3x3) Winograd executor with EIE-compressed U matrices. */
class WinogradConv3x3
{
  public:
    /**
     * Transform @p kernels into the 16 per-position Cout x Cin
     * matrices U_k = (G g G^T)_k and compress each for EIE.
     */
    WinogradConv3x3(const Conv3x3Kernels &kernels,
                    const compress::CompressionOptions &opts);

    /** Winograd forward in float (uses the quantised U matrices). */
    FeatureMap forward(const FeatureMap &input) const;

    /**
     * Winograd forward with the 16 M×V per tile executed on the
     * cycle-accurate accelerator. Tiles are batched per position k:
     * one accelerator run per (tile, k).
     */
    FeatureMap forwardOnEie(const FeatureMap &input,
                            const EieConfig &config,
                            std::uint64_t *total_cycles = nullptr) const;

    /**
     * Multiplications per 2x2 output tile per (cin,cout) pair:
     * direct = 36, Winograd = 16, ratio 2.25 (§VII-C).
     */
    static double
    multiplySavings()
    {
        return 36.0 / 16.0;
    }

  private:
    std::size_t out_channels_;
    std::size_t in_channels_;
    /** One compressed Cout x Cin matrix per transformed position. */
    std::vector<std::unique_ptr<compress::CompressedLayer>> u_;
};

} // namespace eie::core::ext

#endif // EIE_CORE_EXT_WINOGRAD_HH
