#include "core/ext/column_partition.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace eie::core::ext {

namespace {

PartitionResult
summarize(const std::vector<std::uint64_t> &work, unsigned n_pe)
{
    PartitionResult result;
    std::uint64_t total = 0;
    std::uint64_t max_work = 0;
    for (std::uint64_t w : work) {
        total += w;
        max_work = std::max(max_work, w);
        if (w == 0)
            ++result.idle_pes;
    }
    result.total_entries = total;
    result.compute_cycles = max_work;
    result.load_balance = max_work == 0 ? 1.0
        : (static_cast<double>(total) / n_pe) /
          static_cast<double>(max_work);
    return result;
}

} // namespace

PartitionResult
columnPartitionCost(const nn::SparseMatrix &weights,
                    const nn::Vector &activations, unsigned n_pe,
                    unsigned reduction_lanes)
{
    panic_if(n_pe == 0, "need at least one PE");
    panic_if(reduction_lanes == 0, "need at least one reduction lane");
    panic_if(activations.size() != weights.cols(),
             "activation length %zu != %zu columns",
             activations.size(), weights.cols());

    // PE k owns columns j = k (mod N); its work is the non-zeros of
    // those columns whose activation is non-zero.
    std::vector<std::uint64_t> work(n_pe, 0);
    for (std::size_t j = 0; j < weights.cols(); ++j) {
        if (activations[j] == 0.0f)
            continue;
        work[j % n_pe] += weights.column(j).size();
    }
    PartitionResult result = summarize(work, n_pe);

    // Cross-PE reduction of the full-length partial outputs:
    // ceil(log2 N) stages, each moving `rows` values at
    // `reduction_lanes` per cycle.
    if (n_pe > 1)
        result.reduction_cycles = ceilLog2(n_pe) *
            divCeil(weights.rows(), reduction_lanes);
    return result;
}

PartitionResult
rowPartitionCost(const nn::SparseMatrix &weights,
                 const nn::Vector &activations, unsigned n_pe)
{
    panic_if(n_pe == 0, "need at least one PE");
    panic_if(activations.size() != weights.cols(),
             "activation length %zu != %zu columns",
             activations.size(), weights.cols());

    // PE k owns rows i = k (mod N); active columns contribute their
    // entries to the owning PEs.
    std::vector<std::uint64_t> work(n_pe, 0);
    for (std::size_t j = 0; j < weights.cols(); ++j) {
        if (activations[j] == 0.0f)
            continue;
        for (const auto &e : weights.column(j))
            ++work[e.row % n_pe];
    }
    PartitionResult result = summarize(work, n_pe);
    result.reduction_cycles = 0; // outputs are fully local (§VII-A)
    return result;
}

} // namespace eie::core::ext
