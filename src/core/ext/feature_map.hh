/**
 * @file
 * Minimal CHW feature-map container for the convolution extensions
 * (§VII-C "Flexibility": 1x1 convolution and 3x3 Winograd
 * convolution lowered onto EIE M×V).
 */

#ifndef EIE_CORE_EXT_FEATURE_MAP_HH
#define EIE_CORE_EXT_FEATURE_MAP_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace eie::core::ext {

/** Dense channel-major (CHW) feature map. */
class FeatureMap
{
  public:
    FeatureMap() = default;

    FeatureMap(std::size_t channels, std::size_t height,
               std::size_t width)
        : channels_(channels), height_(height), width_(width),
          data_(channels * height * width, 0.0f)
    {}

    std::size_t channels() const { return channels_; }
    std::size_t height() const { return height_; }
    std::size_t width() const { return width_; }

    float &
    at(std::size_t c, std::size_t y, std::size_t x)
    {
        panic_if(c >= channels_ || y >= height_ || x >= width_,
                 "feature map index (%zu,%zu,%zu) out of "
                 "(%zu,%zu,%zu)", c, y, x, channels_, height_, width_);
        return data_[(c * height_ + y) * width_ + x];
    }

    float
    at(std::size_t c, std::size_t y, std::size_t x) const
    {
        panic_if(c >= channels_ || y >= height_ || x >= width_,
                 "feature map index (%zu,%zu,%zu) out of "
                 "(%zu,%zu,%zu)", c, y, x, channels_, height_, width_);
        return data_[(c * height_ + y) * width_ + x];
    }

    const std::vector<float> &data() const { return data_; }

  private:
    std::size_t channels_ = 0;
    std::size_t height_ = 0;
    std::size_t width_ = 0;
    std::vector<float> data_;
};

} // namespace eie::core::ext

#endif // EIE_CORE_EXT_FEATURE_MAP_HH
