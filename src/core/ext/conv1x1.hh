/**
 * @file
 * 1x1 convolution on EIE (§VII-C): the channel-wise reduction at each
 * pixel is exactly an M×V with the Cout x Cin weight matrix, so a
 * compressed 1x1 conv layer runs on the accelerator as one M×V per
 * pixel, re-using the same loaded weights (only the input vector —
 * and hence the LNZD scan — changes per pixel).
 */

#ifndef EIE_CORE_EXT_CONV1X1_HH
#define EIE_CORE_EXT_CONV1X1_HH

#include "compress/compressed_layer.hh"
#include "core/accelerator.hh"
#include "core/ext/feature_map.hh"
#include "core/plan.hh"

namespace eie::core::ext {

/** A compressed 1x1 convolution executable on EIE. */
class Conv1x1
{
  public:
    /** @param layer compressed Cout x Cin weight matrix. */
    explicit Conv1x1(const compress::CompressedLayer &layer);

    /** Golden forward (float, quantised weights), with ReLU. */
    FeatureMap forward(const FeatureMap &input) const;

    /**
     * Run every pixel's M×V on the cycle-accurate accelerator.
     *
     * @param total_stats if non-null, accumulates cycles/energy
     *                    inputs across all pixels
     */
    FeatureMap forwardOnEie(const FeatureMap &input,
                            const EieConfig &config,
                            RunStats *total_stats = nullptr) const;

    std::size_t inChannels() const { return layer_->inputSize(); }
    std::size_t outChannels() const { return layer_->outputSize(); }

  private:
    const compress::CompressedLayer *layer_;
};

} // namespace eie::core::ext

#endif // EIE_CORE_EXT_CONV1X1_HH
