#include "core/network_runner.hh"

#include "engine/backend.hh"

namespace eie::core {

std::uint64_t
NetworkResult::totalCycles() const
{
    std::uint64_t total = 0;
    for (const RunStats &stats : per_layer)
        total += stats.cycles;
    return total;
}

double
NetworkResult::totalTimeUs() const
{
    double total = 0.0;
    for (const RunStats &stats : per_layer)
        total += stats.timeUs();
    return total;
}

NetworkRunner::NetworkRunner(const EieConfig &config)
    : config_(config), functional_(config)
{}

NetworkRunner::~NetworkRunner() = default;

void
NetworkRunner::addLayer(const compress::CompressedLayer &layer,
                        nn::Nonlinearity nonlin)
{
    fatal_if(!plans_.empty() &&
             plans_.back().output_size != layer.inputSize(),
             "layer '%s' input size %zu does not chain with previous "
             "output size %zu", layer.name().c_str(),
             layer.inputSize(), plans_.back().output_size);
    plans_.push_back(planLayer(layer, nonlin, config_));
    // The stack changed: every cached backend describes the old one.
    std::lock_guard<std::mutex> lock(backend_mutex_);
    backends_.clear();
}

std::size_t
NetworkRunner::inputSize() const
{
    fatal_if(plans_.empty(), "network has no layers");
    return plans_.front().input_size;
}

std::size_t
NetworkRunner::outputSize() const
{
    fatal_if(plans_.empty(), "network has no layers");
    return plans_.back().output_size;
}

engine::ExecutionBackend &
NetworkRunner::backend(const std::string &name, unsigned threads,
                       kernel::KernelVariant kernel,
                       kernel::Residency residency) const
{
    fatal_if(plans_.empty(), "network has no layers");

    // Only the compiled backend consumes the thread count, the kernel
    // variant and the residency; normalize the key so scalar/sim
    // requests at different counts share one backend (a SimBackend
    // holds the full compiled image).
    const bool compiled = name == "compiled";
    const unsigned effective = compiled ? threads : 1;
    const kernel::KernelVariant effective_kernel =
        compiled ? kernel : kernel::KernelVariant::Auto;
    const kernel::Residency effective_residency =
        compiled ? residency : kernel::Residency::Decoded;
    const std::string key = name + "/" + std::to_string(effective) +
        "/" + kernel::kernelVariantName(effective_kernel) + "/" +
        kernel::residencyName(effective_residency);
    std::lock_guard<std::mutex> lock(backend_mutex_);
    auto it = backends_.find(key);
    if (it == backends_.end()) {
        std::vector<const LayerPlan *> plan_ptrs;
        plan_ptrs.reserve(plans_.size());
        for (const LayerPlan &plan : plans_)
            plan_ptrs.push_back(&plan);
        it = backends_
                 .emplace(key,
                          engine::makeBackend(name, config_, plan_ptrs,
                                              threads, effective_kernel,
                                              effective_residency))
                 .first;
    }
    return *it->second;
}

NetworkResult
NetworkRunner::run(const std::vector<std::int64_t> &input_raw) const
{
    engine::RunReport report = backend("sim").run(input_raw);
    NetworkResult result;
    result.output_raw = std::move(report.outputs.front());
    result.per_layer = std::move(report.stats.front());
    return result;
}

kernel::Batch
NetworkRunner::runBatch(const kernel::Batch &inputs, unsigned threads,
                        kernel::KernelVariant kernel) const
{
    return backend("compiled", threads, kernel)
        .runBatch(inputs)
        .outputs;
}

std::vector<nn::Vector>
NetworkRunner::runFloatBatch(const std::vector<nn::Vector> &inputs,
                             unsigned threads) const
{
    kernel::Batch raw;
    raw.reserve(inputs.size());
    for (const nn::Vector &input : inputs)
        raw.push_back(functional_.quantizeInput(input));
    const kernel::Batch out = runBatch(raw, threads);
    std::vector<nn::Vector> result;
    result.reserve(out.size());
    for (const auto &frame : out)
        result.push_back(functional_.dequantize(frame));
    return result;
}

nn::Vector
NetworkRunner::runFloat(const nn::Vector &input,
                        NetworkResult *result_out) const
{
    NetworkResult result = run(functional_.quantizeInput(input));
    nn::Vector output = functional_.dequantize(result.output_raw);
    if (result_out)
        *result_out = std::move(result);
    return output;
}

} // namespace eie::core
