#include "core/network_runner.hh"

namespace eie::core {

std::uint64_t
NetworkResult::totalCycles() const
{
    std::uint64_t total = 0;
    for (const RunStats &stats : per_layer)
        total += stats.cycles;
    return total;
}

double
NetworkResult::totalTimeUs() const
{
    double total = 0.0;
    for (const RunStats &stats : per_layer)
        total += stats.timeUs();
    return total;
}

NetworkRunner::NetworkRunner(const EieConfig &config)
    : config_(config), accelerator_(config), functional_(config)
{}

void
NetworkRunner::addLayer(const compress::CompressedLayer &layer,
                        nn::Nonlinearity nonlin)
{
    fatal_if(!plans_.empty() &&
             plans_.back().output_size != layer.inputSize(),
             "layer '%s' input size %zu does not chain with previous "
             "output size %zu", layer.name().c_str(),
             layer.inputSize(), plans_.back().output_size);
    plans_.push_back(planLayer(layer, nonlin, config_));
    // Invalidate the batched-path cache: kernels_ is rebuilt to match
    // plans_ on the next runBatch().
    std::lock_guard<std::mutex> lock(batch_mutex_);
    kernels_.clear();
}

std::size_t
NetworkRunner::inputSize() const
{
    fatal_if(plans_.empty(), "network has no layers");
    return plans_.front().input_size;
}

std::size_t
NetworkRunner::outputSize() const
{
    fatal_if(plans_.empty(), "network has no layers");
    return plans_.back().output_size;
}

NetworkResult
NetworkRunner::run(const std::vector<std::int64_t> &input_raw) const
{
    fatal_if(plans_.empty(), "network has no layers");

    NetworkResult result;
    std::vector<std::int64_t> act = input_raw;
    for (const LayerPlan &plan : plans_) {
        RunResult layer_result = accelerator_.run(plan, act);
        act = std::move(layer_result.output_raw);
        result.per_layer.push_back(layer_result.stats);
    }
    result.output_raw = std::move(act);
    return result;
}

kernel::Batch
NetworkRunner::runBatch(const kernel::Batch &inputs,
                        unsigned threads) const
{
    fatal_if(plans_.empty(), "network has no layers");

    // One lock for the whole execution: kernels_ and pool_ are shared
    // mutable state, and WorkerPool::parallelFor is single-caller.
    std::lock_guard<std::mutex> lock(batch_mutex_);

    if (kernels_.size() != plans_.size()) {
        kernels_.clear();
        kernels_.reserve(plans_.size());
        for (const LayerPlan &plan : plans_)
            kernels_.push_back(
                kernel::CompiledLayer::compile(plan, config_));
    }

    kernel::WorkerPool *pool = nullptr;
    if (threads > 1) {
        if (!pool_ || pool_->threads() != threads)
            pool_ = std::make_unique<kernel::WorkerPool>(threads);
        pool = pool_.get();
    }

    kernel::Batch act = inputs;
    for (const kernel::CompiledLayer &layer : kernels_)
        act = kernel::runBatch(layer, act, pool);
    return act;
}

std::vector<nn::Vector>
NetworkRunner::runFloatBatch(const std::vector<nn::Vector> &inputs,
                             unsigned threads) const
{
    kernel::Batch raw;
    raw.reserve(inputs.size());
    for (const nn::Vector &input : inputs)
        raw.push_back(functional_.quantizeInput(input));
    const kernel::Batch out = runBatch(raw, threads);
    std::vector<nn::Vector> result;
    result.reserve(out.size());
    for (const auto &frame : out)
        result.push_back(functional_.dequantize(frame));
    return result;
}

nn::Vector
NetworkRunner::runFloat(const nn::Vector &input,
                        NetworkResult *result_out) const
{
    NetworkResult result = run(functional_.quantizeInput(input));
    nn::Vector output = functional_.dequantize(result.output_raw);
    if (result_out)
        *result_out = std::move(result);
    return output;
}

} // namespace eie::core
