#include "core/accelerator.hh"

#include <memory>

#include "common/bits.hh"
#include "core/ccu.hh"
#include "core/lnzd.hh"
#include "core/pe.hh"
#include "sim/simulator.hh"

namespace eie::core {

Accelerator::Accelerator(const EieConfig &config) : config_(config)
{
    config_.validate();
}

RunResult
Accelerator::run(const LayerPlan &plan,
                 const std::vector<std::int64_t> &input_raw) const
{
    kernel::CompileOptions options;
    options.host_stream = false; // the sim walks only the SimEntry image
    options.sim_stream = true;
    return run(kernel::CompiledLayer::compile(plan, config_, options),
               input_raw);
}

RunResult
Accelerator::run(const kernel::CompiledLayer &layer,
                 const std::vector<std::int64_t> &input_raw) const
{
    panic_if(input_raw.size() != layer.input_size,
             "input length %zu != compiled %zu", input_raw.size(),
             layer.input_size);
    panic_if(layer.n_pe != config_.n_pe,
             "layer compiled for %u PEs, machine has %u", layer.n_pe,
             config_.n_pe);
    panic_if(!layer.has_sim_stream,
             "layer '%s' compiled without the simulator stream "
             "(CompiledLayer::CompileOptions::sim_stream)",
             layer.name.c_str());

    const unsigned n_pe = config_.n_pe;

    sim::Simulator sim("eie");
    Ccu ccu(config_, sim.stats());
    std::vector<std::unique_ptr<Pe>> pes;
    pes.reserve(n_pe);
    for (unsigned k = 0; k < n_pe; ++k)
        pes.push_back(std::make_unique<Pe>(k, config_, ccu, sim.stats()));

    // The CCU propagates first each cycle: it reads the registered
    // queue occupancy of the previous cycle, then PEs sample its
    // broadcast wire.
    sim.add(&ccu);
    for (auto &pe : pes)
        sim.add(pe.get());

    ccu.attachQueueFull([&pes] {
        for (const auto &pe : pes)
            if (pe->queueFull())
                return true;
        return false;
    });

    const LnzdTree tree(n_pe, config_.lnzd_fanin);

    RunResult result;
    result.output_raw.assign(layer.output_size, 0);

    std::uint64_t compute_cycles = 0;
    std::uint64_t drain_cycles = 0;

    for (const auto &batch_tiles : layer.tiles) {
        panic_if(batch_tiles.empty(), "batch with no tiles");

        for (std::size_t p = 0; p < batch_tiles.size(); ++p) {
            const kernel::CompiledTile &tile = batch_tiles[p];

            // I/O mode: load the tile (one-time cost, not timed).
            for (unsigned k = 0; k < n_pe; ++k)
                pes[k]->loadTile(tile.slices[k], p == 0);

            // LNZD scan of this pass's input slice.
            std::vector<std::int64_t> pass_input(
                input_raw.begin() +
                    static_cast<std::ptrdiff_t>(tile.col_begin),
                input_raw.begin() +
                    static_cast<std::ptrdiff_t>(tile.col_end));
            ccu.configurePass(tree.scan(pass_input, n_pe),
                              config_.lnzdLatency());

            // Computing mode: run until the broadcast schedule is
            // exhausted and every PE has retired its work.
            const std::uint64_t start = sim.cycle();
            const std::uint64_t budget = 10000 +
                4 * (tile.total_entries + pass_input.size());
            const bool finished = sim.runUntil(
                [&] {
                    if (!ccu.done())
                        return false;
                    for (const auto &pe : pes)
                        if (!pe->idle())
                            return false;
                    return true;
                },
                budget);
            panic_if(!finished,
                     "pass did not converge within %llu cycles "
                     "(layer '%s')",
                     static_cast<unsigned long long>(budget),
                     layer.name.c_str());
            compute_cycles += sim.cycle() - start;
        }

        // Drain the batch: ReLU (hardware unit on the write-back
        // path), then stream accumulators into the act SRAM.
        const std::uint64_t drain_start = sim.cycle();
        for (auto &pe : pes) {
            if (layer.nonlin == nn::Nonlinearity::ReLU)
                pe->applyRelu();
            pe->startBatchDrain();
        }
        const bool drained = sim.runUntil(
            [&] {
                for (const auto &pe : pes)
                    if (pe->draining())
                        return false;
                return true;
            },
            16 + config_.regfile_entries);
        panic_if(!drained, "batch drain did not finish");
        drain_cycles += sim.cycle() - drain_start;

        // Collect the batch outputs (PE k, local row r -> global row).
        const std::size_t row_begin = batch_tiles.front().row_begin;
        for (unsigned k = 0; k < n_pe; ++k) {
            const auto &values = pes[k]->drainedValues();
            for (std::size_t r = 0; r < values.size(); ++r)
                result.output_raw[row_begin + r * n_pe + k] = values[r];
        }
    }

    // Assemble statistics.
    RunStats &stats = result.stats;
    stats.n_pe = n_pe;
    stats.clock_ghz = config_.clock_ghz;
    stats.cycles = sim.cycle();
    stats.compute_cycles = compute_cycles;
    stats.drain_cycles = drain_cycles;
    stats.broadcasts = sim.stats().value("broadcasts");
    stats.gated_cycles = sim.stats().value("gated_cycles");
    stats.total_entries = 0;
    stats.padding_entries = 0;
    stats.pe_busy.reserve(n_pe);
    for (const auto &pe : pes) {
        stats.pe_busy.push_back(pe->busyCycles());
        stats.total_entries += pe->macs();
        stats.hazard_stalls += pe->hazardStalls();
        stats.fetch_stalls += pe->fetchStalls();
        stats.starved_cycles += pe->starvedCycles();
        stats.ptr_sram_reads += pe->ptrReads();
        stats.spmat_row_fetches += pe->spmatRowFetches();
        stats.act_sram_reads += pe->actReads();
        stats.act_sram_writes += pe->actWrites();
    }
    for (unsigned k = 0; k < n_pe; ++k)
        stats.padding_entries +=
            sim.stats().value("pe" + std::to_string(k) + ".padding_macs");
    stats.theoretical_cycles = divCeil(stats.total_entries, n_pe);
    return result;
}

nn::Vector
Accelerator::runFloat(const LayerPlan &plan, const nn::Vector &input,
                      RunStats *stats_out) const
{
    const FunctionalModel functional(config_);
    RunResult result = run(plan, functional.quantizeInput(input));
    if (stats_out)
        *stats_out = result.stats;
    return functional.dequantize(result.output_raw);
}

} // namespace eie::core
