#include "core/ptr_read.hh"

#include "common/bits.hh"

namespace eie::core {

PointerReadUnit::PointerReadUnit(const EieConfig &config,
                                 sim::StatGroup &stats)
    : even_bank_("ptr_even",
                 std::max<std::size_t>(1, divCeil(config.ptr_capacity, 2)),
                 stats),
      odd_bank_("ptr_odd",
                std::max<std::size_t>(1, divCeil(config.ptr_capacity, 2)),
                stats)
{}

void
PointerReadUnit::loadPointers(const std::vector<std::uint32_t> &col_ptr)
{
    panic_if(col_ptr.size() < 2, "pointer array needs >= 2 entries");
    // p[j] lives in bank (j % 2) at word (j / 2).
    for (std::size_t j = 0; j < col_ptr.size(); ++j) {
        if (j % 2 == 0)
            even_bank_.load(j / 2, col_ptr[j]);
        else
            odd_bank_.load(j / 2, col_ptr[j]);
    }
    columns_loaded_ = static_cast<std::uint32_t>(col_ptr.size() - 1);
    busy_ = false;
    ready_ = false;
}

void
PointerReadUnit::request(std::uint32_t col)
{
    panic_if(busy_, "pointer request while another is in flight");
    panic_if(col >= columns_loaded_, "column %u out of %u loaded", col,
             columns_loaded_);
    // start = p[col], end = p[col+1]: always in opposite banks.
    even_bank_.read((col + (col % 2)) / 2);
    odd_bank_.read(col / 2);
    pending_even_is_start_ = (col % 2 == 0);
    busy_ = true;
    ready_ = false;
}

void
PointerReadUnit::tick()
{
    even_bank_.tick();
    odd_bank_.tick();
    if (busy_) {
        const auto even_val =
            static_cast<std::uint32_t>(even_bank_.dataOut());
        const auto odd_val =
            static_cast<std::uint32_t>(odd_bank_.dataOut());
        start_ = pending_even_is_start_ ? even_val : odd_val;
        end_ = pending_even_is_start_ ? odd_val : even_val;
        busy_ = false;
        ready_ = true;
    }
}

} // namespace eie::core
