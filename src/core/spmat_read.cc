#include "core/spmat_read.hh"

namespace eie::core {

SpmatReadUnit::SpmatReadUnit(const EieConfig &config,
                             sim::StatGroup &stats)
    : entries_per_row_(config.entriesPerSpmatRow()),
      fetches_(stats.counter("spmat_row_fetches",
                             "wide Spmat SRAM row fetches"))
{
    panic_if(entries_per_row_ == 0, "Spmat row narrower than one entry");
}

void
SpmatReadUnit::loadEntries(std::vector<kernel::SimEntry> entries)
{
    owned_ = std::move(entries);
    loadStream(owned_.data(), owned_.size());
}

void
SpmatReadUnit::loadStream(const kernel::SimEntry *entries,
                          std::size_t count)
{
    stream_ = entries;
    stream_size_ = count;
    cur_ = 0;
    end_ = 0;
    slot_ = {-1, -1};
    inflight_ = -1;
}

std::int64_t
SpmatReadUnit::rowOf(std::uint64_t entry) const
{
    return static_cast<std::int64_t>(entry / entries_per_row_);
}

bool
SpmatReadUnit::buffered(std::int64_t row) const
{
    return slot_[0] == row || slot_[1] == row;
}

int
SpmatReadUnit::freeSlot() const
{
    if (slot_[0] < 0)
        return 0;
    if (slot_[1] < 0)
        return 1;
    return -1;
}

void
SpmatReadUnit::evictBefore(std::int64_t row)
{
    for (auto &s : slot_)
        if (s >= 0 && s < row)
            s = -1;
}

void
SpmatReadUnit::startColumn(std::uint32_t begin, std::uint32_t end)
{
    panic_if(columnActive(), "startColumn while a column is active");
    panic_if(begin > end || end > stream_size_,
             "bad column range [%u,%u) of %zu entries", begin, end,
             stream_size_);
    cur_ = begin;
    end_ = end;
    if (columnActive())
        evictBefore(rowOf(cur_));
}

bool
SpmatReadUnit::entryReady() const
{
    return columnActive() && buffered(rowOf(cur_));
}

kernel::SimEntry
SpmatReadUnit::peekEntry() const
{
    panic_if(!entryReady(), "peekEntry with no ready entry");
    return stream_[cur_];
}

void
SpmatReadUnit::consumeEntry()
{
    panic_if(!entryReady(), "consumeEntry with no ready entry");
    const std::int64_t old_row = rowOf(cur_);
    ++cur_;
    // Crossing into the next row retires the old one (unless the
    // column ended inside it, in which case it may still serve the
    // next column).
    if (columnActive() && rowOf(cur_) != old_row)
        evictBefore(rowOf(cur_));
}

void
SpmatReadUnit::tryFetch(std::int64_t row)
{
    if (buffered(row) || inflight_ == row)
        return;
    if (freeSlot() < 0)
        return;
    inflight_ = row;
    ++fetches_;
}

void
SpmatReadUnit::prefetch(bool next_known, std::uint32_t next_begin,
                        std::uint32_t next_end)
{
    if (inflight_ >= 0)
        return; // one fetch in flight at a time

    if (columnActive()) {
        const std::int64_t need = rowOf(cur_);
        if (!buffered(need)) {
            tryFetch(need);
            return;
        }
        const std::int64_t last = rowOf(end_ - 1);
        if (last > need) {
            // Stay one row ahead within the column.
            if (!buffered(need + 1)) {
                tryFetch(need + 1);
                return;
            }
            if (need + 1 < last)
                return; // plenty left; don't spill into next column yet
        }
    }

    // Current column covered (or idle): prefetch the head of the next
    // queued column if the front end already knows it.
    if (next_known && next_begin < next_end)
        tryFetch(rowOf(next_begin));
}

void
SpmatReadUnit::tick()
{
    if (inflight_ >= 0) {
        const int free = freeSlot();
        panic_if(free < 0, "row fetch landed with no free buffer slot");
        slot_[static_cast<std::size_t>(free)] = inflight_;
        inflight_ = -1;
    }
}

} // namespace eie::core
