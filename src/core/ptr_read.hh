/**
 * @file
 * Pointer Read Unit (§IV): looks up the start and end pointers p_j and
 * p_{j+1} of the queued column. "To allow both pointers to be read in
 * one cycle using single-ported SRAM arrays, we store pointers in two
 * SRAM banks and use the LSB of the address to select between banks.
 * p_j and p_{j+1} will always be in different banks."
 */

#ifndef EIE_CORE_PTR_READ_HH
#define EIE_CORE_PTR_READ_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "sim/sram.hh"
#include "sim/stats.hh"

namespace eie::core {

/** Banked pointer lookup with single-cycle (synchronous SRAM) latency. */
class PointerReadUnit
{
  public:
    PointerReadUnit(const EieConfig &config, sim::StatGroup &stats);

    /** Backdoor-load a column pointer array (length cols+1). */
    void loadPointers(const std::vector<std::uint32_t> &col_ptr);

    /**
     * Issue the banked reads for column @p col this cycle; both
     * pointers are available through pointers() after the clock edge.
     */
    void request(std::uint32_t col);

    /** True while a request is in flight (data not yet available). */
    bool busy() const { return busy_; }

    /** True when the requested pointer pair is available. */
    bool ready() const { return ready_; }

    /** The (start, end) entry indices of the requested column. */
    std::pair<std::uint32_t, std::uint32_t>
    pointers() const
    {
        panic_if(!ready_, "pointer data not ready");
        return {start_, end_};
    }

    /** Clock edge. */
    void tick();

  private:
    sim::Sram even_bank_;
    sim::Sram odd_bank_;
    std::uint32_t columns_loaded_ = 0;
    bool busy_ = false;
    bool ready_ = false;
    bool pending_even_is_start_ = false;
    std::uint32_t start_ = 0;
    std::uint32_t end_ = 0;
};

} // namespace eie::core

#endif // EIE_CORE_PTR_READ_HH
