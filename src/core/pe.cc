#include "core/pe.hh"

namespace eie::core {

Pe::Pe(unsigned index, const EieConfig &config, const Ccu &ccu,
       sim::StatGroup &parent)
    : sim::Module("pe" + std::to_string(index)),
      index_(index), n_pe_(config.n_pe),
      stats_("pe" + std::to_string(index), &parent),
      queue_(config.fifo_depth),
      ptr_(config, stats_),
      spmat_(config, stats_),
      arith_(config, stats_),
      act_rw_(config, stats_),
      ccu_(ccu),
      busy_(stats_.counter("busy_cycles", "cycles with an ALU issue")),
      starved_(stats_.counter("starved_cycles",
                              "bubble cycles with no work available")),
      hazard_stalls_(stats_.counter("hazard_stalls",
                                    "issues blocked by an accumulator "
                                    "hazard (bypass disabled)")),
      fetch_stalls_(stats_.counter("fetch_stalls",
                                   "cycles waiting on a Spmat row "
                                   "fetch")),
      queue_pushes_(stats_.counter("queue_pushes",
                                   "broadcasts accepted into the "
                                   "activation queue"))
{}

void
Pe::loadTile(const kernel::CompiledSlice &slice, bool batch_start)
{
    panic_if(slice.sim_col_ptr.empty(),
             "compiled slice has no simulator stream (compile with "
             "CompileOptions::sim_stream)");
    spmat_.loadStream(slice.sim_entries.data(),
                      slice.sim_entries.size());
    ptr_.loadPointers(slice.sim_col_ptr);
    resetFrontEnd(slice.sim_col_ptr.size() - 1, slice.local_rows,
                  batch_start);
}

void
Pe::loadTile(const compress::PeSlice &slice,
             const compress::Codebook &codebook, bool batch_start)
{
    spmat_.loadEntries(
        kernel::decodeSimStream(slice, codebook.rawValues()));
    ptr_.loadPointers(slice.colPtr());
    resetFrontEnd(slice.colPtr().size() - 1, slice.localRows(),
                  batch_start);
}

void
Pe::resetFrontEnd(std::size_t pass_cols, std::uint32_t local_rows,
                  bool batch_start)
{
    // Account this PE's share of the pass's input vector: the LNZD
    // scan walks it once per pass. PE k holds activations k, k+N, ...
    const std::size_t share = pass_cols > index_
        ? (pass_cols - index_ + n_pe_ - 1) / n_pe_
        : 0;
    act_rw_.loadSourceShare(share);

    queue_.clear();
    desc_state_ = DescState::Empty;
    act_value_ = 0;
    stashed_bcast_ = Broadcast{};
    mode_ = Mode::Compute;

    if (batch_start)
        arith_.configureBatch(local_rows);
}

bool
Pe::idle() const
{
    return queue_.empty() && desc_state_ == DescState::Empty &&
        !spmat_.columnActive() && !ptr_.busy() && arith_.pipelineEmpty();
}

void
Pe::startBatchDrain()
{
    mode_ = Mode::Drain;
    act_rw_.startDrain(arith_.accumulators());
}

void
Pe::propagate()
{
    // Sample the broadcast wire (driven by the CCU, which is
    // registered before every PE).
    stashed_bcast_ = ccu_.broadcastOut();
}

std::uint64_t
Pe::actReads() const
{
    return act_rw_.reads() + stats_.value("act_scan_reads");
}

void
Pe::computeCycle()
{
    // 1. Accept the broadcast. The CCU's flow control guarantees
    //    space (it gates on the same registered occupancy the FIFO
    //    checks), so a push into a full queue is a modelling bug and
    //    panics inside the FIFO.
    if (stashed_bcast_.valid) {
        queue_.push({stashed_bcast_.col, stashed_bcast_.value});
        ++queue_pushes_;
    }

    // 2. Issue one entry from the active column. The stream is the
    //    pre-decoded kernel image: the zero-run address accumulation
    //    and codebook lookup happened at compile time, so the hot
    //    loop is a row check plus one MAC.
    bool busy = false;
    bool stalled = false;
    if (spmat_.columnActive()) {
        if (spmat_.entryReady()) {
            const kernel::SimEntry entry = spmat_.peekEntry();
            if (arith_.canIssue(entry.local_row)) {
                spmat_.consumeEntry();
                arith_.issueRaw(entry.weight_raw, entry.local_row,
                                act_value_, entry.is_padding);
                ++macs_issued_;
                busy = true;
                ++busy_;
            } else {
                ++hazard_stalls_;
                stalled = true;
            }
        } else {
            ++fetch_stalls_;
            stalled = true;
        }
    }

    // 3. Capture pointer data into the descriptor buffer.
    if (desc_state_ == DescState::Waiting && ptr_.ready()) {
        const auto [begin, end] = ptr_.pointers();
        desc_begin_ = begin;
        desc_end_ = end;
        desc_state_ = DescState::Ready;
        ptr_reads_seen_ += 2; // one read in each bank
    }

    // 4. Column switch once the active column is exhausted. The PE
    //    "processes the activation at the head of its queue" (§IV):
    //    the head entry is retired only when its column becomes the
    //    active one, so a depth-1 queue really holds just the column
    //    in flight.
    bool popped_this_cycle = false;
    if (!spmat_.columnActive() && desc_state_ == DescState::Ready) {
        spmat_.startColumn(desc_begin_, desc_end_);
        act_value_ = desc_value_;
        desc_state_ = DescState::Empty;
        queue_.pop();
        popped_this_cycle = true;
    }

    // 5. Start the pointer lookup for the column at the queue head
    //    (overlapped with the tail of the active column). The pop
    //    from step 4 commits at the clock edge, so the new head is
    //    only visible — and claimable — next cycle.
    if (desc_state_ == DescState::Empty && !popped_this_cycle &&
        !queue_.empty() && !ptr_.busy()) {
        const QueuedAct &head = queue_.front();
        ptr_.request(head.col);
        desc_value_ = head.value;
        desc_state_ = DescState::Waiting;
    }

    // 6. Row-buffer prefetch (current column first, then the next
    //    descriptor's head row).
    spmat_.prefetch(desc_state_ == DescState::Ready, desc_begin_,
                    desc_end_);

    if (!busy && !stalled)
        ++starved_;
}

void
Pe::update()
{
    if (mode_ == Mode::Compute) {
        computeCycle();
    } else if (act_rw_.draining()) {
        act_rw_.drainCycle();
    }

    queue_.tick();
    ptr_.tick();
    spmat_.tick();
    arith_.tick();
    act_rw_.tick();
}

} // namespace eie::core
