#include "core/plan.hh"

#include <algorithm>

#include "common/bits.hh"

namespace eie::core {

std::uint64_t
LayerPlan::totalEntries() const
{
    std::uint64_t total = 0;
    for (const auto &row : tiles)
        for (const Tile &tile : row)
            total += tile.storage.totalEntries();
    return total;
}

std::uint64_t
LayerPlan::paddingEntries() const
{
    std::uint64_t total = 0;
    for (const auto &row : tiles)
        for (const Tile &tile : row)
            total += tile.storage.paddingEntries();
    return total;
}

double
LayerPlan::realWorkRatio() const
{
    const std::uint64_t total = totalEntries();
    return total == 0 ? 1.0
        : static_cast<double>(total - paddingEntries()) /
          static_cast<double>(total);
}

namespace {

/** Split [0, size) into ranges of at most @p max_chunk. */
std::vector<std::size_t>
splitBoundaries(std::size_t size, std::size_t max_chunk)
{
    std::vector<std::size_t> boundaries{0};
    while (boundaries.back() < size)
        boundaries.push_back(
            std::min(size, boundaries.back() + max_chunk));
    return boundaries;
}

} // namespace

LayerPlan
planLayer(const compress::CompressedLayer &layer, nn::Nonlinearity nonlin,
          const EieConfig &config)
{
    return planLayer(layer.name(), layer.quantizedWeights(),
                     layer.codebook(), nonlin, config);
}

LayerPlan
planLayer(std::string name, const nn::SparseMatrix &weights,
          const compress::Codebook &codebook, nn::Nonlinearity nonlin,
          const EieConfig &config)
{
    config.validate();

    LayerPlan plan;
    plan.name = std::move(name);
    plan.input_size = weights.cols();
    plan.output_size = weights.rows();
    plan.nonlin = nonlin;
    plan.n_pe = config.n_pe;

    // Row batches: regfile_entries outputs per PE per batch.
    const std::size_t rows_per_batch =
        static_cast<std::size_t>(config.regfile_entries) * config.n_pe;
    const auto row_bounds =
        splitBoundaries(weights.rows(), rows_per_batch);

    // Column passes: pointer SRAM holds cols+1 pointers, and each PE's
    // activation SRAM must hold its share of the pass's input slice.
    const std::size_t ptr_cols =
        config.ptr_capacity > 1 ? config.ptr_capacity - 1
                                : std::size_t{1};
    const std::size_t act_cols =
        static_cast<std::size_t>(config.act_sram_entries) * config.n_pe;
    const std::size_t cols_per_pass = std::max<std::size_t>(
        1, std::min(ptr_cols, act_cols));
    const auto col_bounds =
        splitBoundaries(weights.cols(), cols_per_pass);

    auto batches = weights.rowPartition(row_bounds);

    compress::InterleaveOptions iopts;
    iopts.n_pe = config.n_pe;

    for (std::size_t b = 0; b + 1 < row_bounds.size(); ++b) {
        std::vector<Tile> row_tiles;
        for (std::size_t p = 0; p + 1 < col_bounds.size(); ++p) {
            nn::SparseMatrix tile_weights =
                col_bounds.size() > 2
                    ? batches[b].colSlice(col_bounds[p], col_bounds[p + 1])
                    : std::move(batches[b]);
            compress::InterleavedCsc storage(tile_weights, codebook,
                                             iopts);

            // Capacity checks against the per-PE SRAM budgets.
            std::size_t max_entries = 0;
            for (unsigned k = 0; k < config.n_pe; ++k)
                max_entries = std::max(
                    max_entries, storage.pe(k).totalEntries());
            // Hardware pointer registers are 16 bits (§IV "Pointer
            // Read Unit"); entry-granular pointers address at most
            // 64K entries per slice.
            if (max_entries > mask(16)) {
                warn("layer '%s' tile (%zu,%zu): largest PE slice "
                     "(%zu entries) exceeds the 16-bit pointer range; "
                     "row-granular pointers would be needed",
                     plan.name.c_str(), b, p, max_entries);
            }
            if (max_entries > config.spmat_capacity_entries) {
                if (config.enforce_capacity) {
                    fatal("layer '%s' tile (%zu,%zu): largest PE "
                          "slice needs %zu Spmat entries, capacity "
                          "is %u", plan.name.c_str(), b, p,
                          max_entries, config.spmat_capacity_entries);
                }
                warn("layer '%s' tile (%zu,%zu): largest PE slice "
                     "exceeds Spmat capacity (%zu > %u); continuing "
                     "(relaxed mode)", plan.name.c_str(), b, p,
                     max_entries, config.spmat_capacity_entries);
            }

            row_tiles.push_back(Tile{
                row_bounds[b], row_bounds[b + 1],
                col_bounds[p], col_bounds[p + 1],
                std::move(storage)});
        }
        plan.tiles.push_back(std::move(row_tiles));
    }
    return plan;
}

} // namespace eie::core
