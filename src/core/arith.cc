#include "core/arith.hh"

namespace eie::core {

ArithmeticUnit::ArithmeticUnit(const EieConfig &config,
                               sim::StatGroup &stats)
    : act_fmt_(config.act_format), weight_fmt_(config.weight_format),
      bypass_(config.enable_bypass),
      macs_(stats.counter("macs", "multiply-accumulates issued")),
      padding_macs_(stats.counter("padding_macs",
                                  "MACs on padding-zero entries"))
{}

void
ArithmeticUnit::configureBatch(std::uint32_t rows_this_pe)
{
    acc_.assign(rows_this_pe, 0);
    inflight_ = {-1, -1, -1};
}

void
ArithmeticUnit::loadCodebook(const compress::Codebook &codebook)
{
    const auto &raw = codebook.rawValues();
    decode_lut_ = raw.data();
    decode_lut_size_ = raw.size();
}

bool
ArithmeticUnit::canIssue(std::uint32_t local_row) const
{
    if (bypass_)
        return true;
    // Without the bypass/forwarding network, an update must not issue
    // while an update to the same accumulator is still in flight.
    const auto row = static_cast<std::int32_t>(local_row);
    return inflight_[0] != row && inflight_[1] != row &&
        inflight_[2] != row;
}

void
ArithmeticUnit::issue(std::uint8_t weight_index, std::uint32_t local_row,
                      std::int64_t act_raw)
{
    panic_if(weight_index >= decode_lut_size_,
             "codebook index %u out of %zu (codebook not loaded?)",
             weight_index, decode_lut_size_);
    issueRaw(decode_lut_[weight_index], local_row, act_raw,
             weight_index == 0);
}

void
ArithmeticUnit::issueRaw(std::int64_t weight_raw,
                         std::uint32_t local_row, std::int64_t act_raw,
                         bool is_padding)
{
    panic_if(local_row >= acc_.size(),
             "accumulator %u out of %zu configured rows", local_row,
             acc_.size());
    panic_if(!canIssue(local_row), "issued into a structural hazard");

    acc_[local_row] = macFixed(acc_[local_row], weight_raw, act_raw,
                               weight_fmt_, act_fmt_);

    panic_if(inflight_[0] != -1, "double issue in one cycle");
    inflight_[0] = static_cast<std::int32_t>(local_row);

    ++macs_;
    if (is_padding)
        ++padding_macs_;
}

bool
ArithmeticUnit::pipelineEmpty() const
{
    return inflight_[0] == -1 && inflight_[1] == -1 && inflight_[2] == -1;
}

void
ArithmeticUnit::tick()
{
    inflight_[2] = inflight_[1];
    inflight_[1] = inflight_[0];
    inflight_[0] = -1;
}

void
ArithmeticUnit::applyRelu()
{
    for (std::int64_t &v : acc_)
        v = reluRaw(v);
}

} // namespace eie::core
