#include "nn/generate.hh"

#include <cmath>

#include "common/logging.hh"

namespace eie::nn {

SparseMatrix
makeSparseWeights(std::size_t rows, std::size_t cols,
                  const WeightGenOptions &opts, Rng &rng)
{
    fatal_if(opts.density < 0.0 || opts.density > 1.0,
             "weight density %f out of [0,1]", opts.density);
    fatal_if(opts.row_block == 0, "row block must be >= 1");

    // Per-row keep probability: multi-scale clustered row importance
    // when row_block_sigma > 0, flat otherwise.
    std::vector<double> row_density(rows, opts.density);
    if (opts.row_block_sigma > 0.0) {
        const double scale_sigma =
            opts.row_block_sigma / std::sqrt(3.0);
        std::vector<double> multiplier(rows, 1.0);
        for (unsigned scale = 0; scale < 3; ++scale) {
            const std::size_t block = static_cast<std::size_t>(
                opts.row_block) << (2 * scale); // B, 4B, 16B
            const std::size_t blocks = (rows + block - 1) / block;
            std::vector<double> factor(blocks);
            for (std::size_t b = 0; b < blocks; ++b)
                factor[b] = rng.logNormal(0.0, scale_sigma);
            for (std::size_t i = 0; i < rows; ++i)
                multiplier[i] *= factor[i / block];
        }
        double sum = 0.0;
        for (double m : multiplier)
            sum += m;
        const double mean = sum / static_cast<double>(rows);
        for (std::size_t i = 0; i < rows; ++i)
            row_density[i] =
                std::min(1.0, opts.density * multiplier[i] / mean);
    }

    SparseMatrix w(rows, cols);
    for (std::size_t j = 0; j < cols; ++j) {
        for (std::size_t i = 0; i < rows; ++i) {
            if (!rng.bernoulli(row_density[i]))
                continue;
            const double magnitude =
                rng.logNormal(opts.log_mu, opts.log_sigma);
            const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
            float value = static_cast<float>(sign * magnitude);
            if (value == 0.0f)
                value = 1e-6f; // keep the entry structurally non-zero
            w.insert(i, j, value);
        }
    }
    return w;
}

Matrix
makeDenseWeights(std::size_t rows, std::size_t cols, double stddev, Rng &rng)
{
    Matrix w(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            w.at(i, j) = static_cast<float>(rng.normal(0.0, stddev));
    return w;
}

Vector
makeActivations(std::size_t n, double density, Rng &rng, double scale)
{
    fatal_if(density < 0.0 || density > 1.0,
             "activation density %f out of [0,1]", density);
    Vector a(n, 0.0f);
    const auto nnz = static_cast<std::uint32_t>(
        std::lround(static_cast<double>(n) * density));
    if (nnz == 0)
        return a;
    const auto positions =
        rng.sampleWithoutReplacement(static_cast<std::uint32_t>(n), nnz);
    for (std::uint32_t pos : positions) {
        float value =
            static_cast<float>(std::abs(rng.normal(0.0, scale)));
        if (value == 0.0f)
            value = static_cast<float>(scale) * 1e-3f;
        a[pos] = value;
    }
    return a;
}

} // namespace eie::nn
