#include "nn/layer.hh"

namespace eie::nn {

Vector
applyNonlinearity(Nonlinearity f, const Vector &v)
{
    switch (f) {
      case Nonlinearity::None:    return v;
      case Nonlinearity::ReLU:    return relu(v);
      case Nonlinearity::Sigmoid: return sigmoid(v);
      case Nonlinearity::Tanh:    return tanhVec(v);
    }
    panic("unknown nonlinearity %d", static_cast<int>(f));
    return v; // unreachable
}

FcLayer::FcLayer(std::string name, SparseMatrix weights,
                 Nonlinearity nonlin)
    : FcLayer(std::move(name), std::move(weights), Vector{}, nonlin)
{}

FcLayer::FcLayer(std::string name, SparseMatrix weights, Vector bias,
                 Nonlinearity nonlin)
    : name_(std::move(name)), weights_(std::move(weights)),
      bias_(std::move(bias)), nonlin_(nonlin)
{
    fatal_if(!bias_.empty() && bias_.size() != weights_.rows(),
             "layer '%s': bias length %zu != output size %zu",
             name_.c_str(), bias_.size(), weights_.rows());
}

Vector
FcLayer::forward(const Vector &input) const
{
    Vector pre = weights_.spmv(input);
    if (!bias_.empty())
        for (std::size_t i = 0; i < pre.size(); ++i)
            pre[i] += bias_[i];
    return applyNonlinearity(nonlin_, pre);
}

} // namespace eie::nn
