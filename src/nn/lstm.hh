/**
 * @file
 * LSTM cell built on a single packed M×V, matching the NT-LSTM
 * benchmark layer of the paper: NeuralTalk's LSTM packs all four gate
 * matrices into one (4H) x (X + H + 1) weight matrix applied to
 * [x; h; 1], which for X = H = 600 gives the published 1201 -> 2400
 * layer shape (Table III).
 */

#ifndef EIE_NN_LSTM_HH
#define EIE_NN_LSTM_HH

#include "nn/sparse.hh"
#include "nn/tensor.hh"

namespace eie::nn {

/** Hidden and cell state of an LSTM. */
struct LstmState
{
    Vector h; ///< hidden state, length H
    Vector c; ///< cell state, length H
};

/**
 * An LSTM cell whose gate pre-activations come from one packed sparse
 * M×V — the exact computation EIE executes for NT-LSTM.
 *
 * Gate layout in the packed output (rows of W): [i; f; o; g] with
 * i = input gate, f = forget gate, o = output gate, g = candidate cell
 * ("temporary memory cell" in the paper's decomposition, §II).
 */
class LstmCell
{
  public:
    /**
     * @param weights packed gate matrix, shape (4H) x (X + H + 1);
     *                the trailing input column is the bias column
     *                (applied to a constant 1), following the paper's
     *                bias-folding convention (§III-A).
     * @param input_size X
     * @param hidden_size H
     */
    LstmCell(SparseMatrix weights, std::size_t input_size,
             std::size_t hidden_size);

    /** Zero-initialised state. */
    LstmState initialState() const;

    /**
     * One time step: returns the new state given input @p x and the
     * previous @p state.
     */
    LstmState step(const Vector &x, const LstmState &state) const;

    /**
     * The packed input vector [x; h; 1] the M×V consumes — exposed so
     * the EIE runner can feed the accelerator the same vector.
     */
    Vector packInput(const Vector &x, const LstmState &state) const;

    /**
     * Apply the gate non-linearities to a packed pre-activation vector
     * (length 4H) and combine with the previous state — the part of
     * the step that runs outside the accelerator.
     */
    LstmState applyGates(const Vector &packed_preact,
                         const LstmState &state) const;

    const SparseMatrix &weights() const { return weights_; }
    std::size_t inputSize() const { return input_size_; }
    std::size_t hiddenSize() const { return hidden_size_; }

  private:
    SparseMatrix weights_;
    std::size_t input_size_;
    std::size_t hidden_size_;
};

} // namespace eie::nn

#endif // EIE_NN_LSTM_HH
