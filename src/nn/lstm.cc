#include "nn/lstm.hh"

#include <cmath>

#include "common/logging.hh"

namespace eie::nn {

LstmCell::LstmCell(SparseMatrix weights, std::size_t input_size,
                   std::size_t hidden_size)
    : weights_(std::move(weights)), input_size_(input_size),
      hidden_size_(hidden_size)
{
    fatal_if(weights_.rows() != 4 * hidden_size_,
             "packed LSTM weights have %zu rows, expected 4H = %zu",
             weights_.rows(), 4 * hidden_size_);
    fatal_if(weights_.cols() != input_size_ + hidden_size_ + 1,
             "packed LSTM weights have %zu cols, expected X+H+1 = %zu",
             weights_.cols(), input_size_ + hidden_size_ + 1);
}

LstmState
LstmCell::initialState() const
{
    return {Vector(hidden_size_, 0.0f), Vector(hidden_size_, 0.0f)};
}

Vector
LstmCell::packInput(const Vector &x, const LstmState &state) const
{
    panic_if(x.size() != input_size_, "LSTM input length %zu != %zu",
             x.size(), input_size_);
    panic_if(state.h.size() != hidden_size_,
             "LSTM hidden length %zu != %zu", state.h.size(),
             hidden_size_);
    Vector packed;
    packed.reserve(input_size_ + hidden_size_ + 1);
    packed.insert(packed.end(), x.begin(), x.end());
    packed.insert(packed.end(), state.h.begin(), state.h.end());
    packed.push_back(1.0f); // bias column
    return packed;
}

LstmState
LstmCell::applyGates(const Vector &packed_preact,
                     const LstmState &state) const
{
    panic_if(packed_preact.size() != 4 * hidden_size_,
             "packed pre-activation length %zu != 4H = %zu",
             packed_preact.size(), 4 * hidden_size_);

    LstmState next{Vector(hidden_size_), Vector(hidden_size_)};
    for (std::size_t k = 0; k < hidden_size_; ++k) {
        const double i_gate =
            1.0 / (1.0 + std::exp(-packed_preact[k]));
        const double f_gate =
            1.0 / (1.0 + std::exp(-packed_preact[hidden_size_ + k]));
        const double o_gate =
            1.0 / (1.0 + std::exp(-packed_preact[2 * hidden_size_ + k]));
        const double g_cand =
            std::tanh(packed_preact[3 * hidden_size_ + k]);

        const double c_new = f_gate * state.c[k] + i_gate * g_cand;
        next.c[k] = static_cast<float>(c_new);
        next.h[k] = static_cast<float>(o_gate * std::tanh(c_new));
    }
    return next;
}

LstmState
LstmCell::step(const Vector &x, const LstmState &state) const
{
    const Vector packed = packInput(x, state);
    const Vector preact = weights_.spmv(packed);
    return applyGates(preact, state);
}

} // namespace eie::nn
