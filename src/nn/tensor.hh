/**
 * @file
 * Dense tensor primitives for the golden (reference) model.
 *
 * The golden model plays the role Caffe played in the paper: a trusted
 * floating-point implementation against which both the functional EIE
 * model and the cycle-accurate simulator are verified.
 */

#ifndef EIE_NN_TENSOR_HH
#define EIE_NN_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace eie::nn {

/** Dense vector of single-precision values. */
using Vector = std::vector<float>;

/** Dense row-major matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Create a zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    float &
    at(std::size_t r, std::size_t c)
    {
        panic_if(r >= rows_ || c >= cols_, "matrix index (%zu,%zu) out of "
                 "(%zu,%zu)", r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        panic_if(r >= rows_ || c >= cols_, "matrix index (%zu,%zu) out of "
                 "(%zu,%zu)", r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    /** Raw row-major storage. */
    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** y = W a (dense GEMV, double accumulation). */
Vector matVec(const Matrix &w, const Vector &a);

/** Element-wise rectified linear unit. */
Vector relu(const Vector &v);

/** Logistic sigmoid applied element-wise. */
Vector sigmoid(const Vector &v);

/** Hyperbolic tangent applied element-wise. */
Vector tanhVec(const Vector &v);

/** Numerically-stable softmax. */
Vector softmax(const Vector &v);

/** Index of the maximum element (first on ties); requires non-empty. */
std::size_t argmax(const Vector &v);

/** Fraction of elements that are exactly zero. */
double zeroFraction(const Vector &v);

/** Max absolute difference between two equal-length vectors. */
double maxAbsDiff(const Vector &a, const Vector &b);

} // namespace eie::nn

#endif // EIE_NN_TENSOR_HH
