#include "nn/trainer.hh"

#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace eie::nn {

ClusterTask::ClusterTask(std::size_t dim, int n_classes,
                         double cluster_radius, double noise_stddev,
                         Rng &rng)
    : dim_(dim), n_classes_(n_classes), noise_stddev_(noise_stddev)
{
    fatal_if(n_classes_ <= 1, "need at least two classes");

    // Class means: random directions scaled to the cluster radius.
    means_.reserve(n_classes_);
    for (int c = 0; c < n_classes_; ++c) {
        Vector mean(dim_);
        double norm2 = 0.0;
        for (std::size_t d = 0; d < dim_; ++d) {
            mean[d] = static_cast<float>(rng.normal(0.0, 1.0));
            norm2 += static_cast<double>(mean[d]) * mean[d];
        }
        const double scale = cluster_radius / std::sqrt(norm2 + 1e-12);
        for (float &x : mean)
            x = static_cast<float>(x * scale);
        means_.push_back(std::move(mean));
    }
}

Dataset
ClusterTask::sample(std::size_t n_samples, Rng &rng) const
{
    Dataset data;
    data.inputs.reserve(n_samples);
    data.labels.reserve(n_samples);
    for (std::size_t s = 0; s < n_samples; ++s) {
        const int label =
            static_cast<int>(rng.uniformInt(0, n_classes_ - 1));
        Vector x(dim_);
        for (std::size_t d = 0; d < dim_; ++d)
            x[d] = static_cast<float>(
                means_[static_cast<std::size_t>(label)][d] +
                rng.normal(0.0, noise_stddev_));
        data.inputs.push_back(std::move(x));
        data.labels.push_back(label);
    }
    return data;
}

Dataset
makeClusterDataset(std::size_t n_samples, std::size_t dim, int n_classes,
                   double cluster_radius, double noise_stddev, Rng &rng)
{
    const ClusterTask task(dim, n_classes, cluster_radius, noise_stddev,
                           rng);
    return task.sample(n_samples, rng);
}

Mlp::Mlp(std::vector<std::size_t> dims, Rng &rng) : dims_(std::move(dims))
{
    fatal_if(dims_.size() < 2, "an MLP needs at least input/output dims");
    for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
        const std::size_t fan_in = dims_[l];
        const std::size_t fan_out = dims_[l + 1];
        const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
        Matrix w(fan_out, fan_in);
        for (std::size_t i = 0; i < fan_out; ++i)
            for (std::size_t j = 0; j < fan_in; ++j)
                w.at(i, j) = static_cast<float>(rng.normal(0.0, stddev));
        weights_.push_back(std::move(w));
        biases_.emplace_back(fan_out, 0.0f);
    }
}

Vector
Mlp::forward(const Vector &input) const
{
    Vector act = input;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        Vector pre = matVec(weights_[l], act);
        for (std::size_t i = 0; i < pre.size(); ++i)
            pre[i] += biases_[l][i];
        act = (l + 1 < weights_.size()) ? relu(pre) : pre;
    }
    return act;
}

double
Mlp::trainEpoch(const Dataset &data, double learning_rate,
                std::size_t batch_size, Rng &rng)
{
    panic_if(data.size() == 0, "cannot train on an empty dataset");
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    const std::size_t n_layers = weights_.size();
    double total_loss = 0.0;

    for (std::size_t start = 0; start < order.size();
         start += batch_size) {
        const std::size_t end = std::min(order.size(), start + batch_size);
        const double inv_batch = 1.0 / static_cast<double>(end - start);

        // Accumulated gradients for the batch.
        std::vector<Matrix> grad_w;
        std::vector<Vector> grad_b;
        for (std::size_t l = 0; l < n_layers; ++l) {
            grad_w.emplace_back(weights_[l].rows(), weights_[l].cols());
            grad_b.emplace_back(weights_[l].rows(), 0.0f);
        }

        for (std::size_t s = start; s < end; ++s) {
            const Vector &x = data.inputs[order[s]];
            const int label = data.labels[order[s]];

            // Forward, keeping the activations of every layer.
            std::vector<Vector> acts{x};
            std::vector<Vector> pres;
            for (std::size_t l = 0; l < n_layers; ++l) {
                Vector pre = matVec(weights_[l], acts.back());
                for (std::size_t i = 0; i < pre.size(); ++i)
                    pre[i] += biases_[l][i];
                pres.push_back(pre);
                acts.push_back(l + 1 < n_layers ? relu(pre) : pre);
            }

            const Vector probs = softmax(acts.back());
            total_loss -=
                std::log(std::max(1e-12, double{
                    probs[static_cast<std::size_t>(label)]}));

            // Backward: delta = dLoss/dPre for the current layer.
            Vector delta = probs;
            delta[static_cast<std::size_t>(label)] -= 1.0f;

            for (std::size_t l = n_layers; l-- > 0;) {
                const Vector &in_act = acts[l];
                for (std::size_t i = 0; i < delta.size(); ++i) {
                    grad_b[l][i] += delta[i];
                    for (std::size_t j = 0; j < in_act.size(); ++j)
                        grad_w[l].at(i, j) += delta[i] * in_act[j];
                }
                if (l == 0)
                    break;
                // Propagate through W^T and the ReLU derivative.
                Vector prev_delta(weights_[l].cols(), 0.0f);
                for (std::size_t i = 0; i < delta.size(); ++i)
                    for (std::size_t j = 0; j < prev_delta.size(); ++j)
                        prev_delta[j] += weights_[l].at(i, j) * delta[i];
                for (std::size_t j = 0; j < prev_delta.size(); ++j)
                    if (pres[l - 1][j] <= 0.0f)
                        prev_delta[j] = 0.0f;
                delta = std::move(prev_delta);
            }
        }

        // SGD step.
        for (std::size_t l = 0; l < n_layers; ++l) {
            for (std::size_t i = 0; i < weights_[l].rows(); ++i) {
                biases_[l][i] -= static_cast<float>(
                    learning_rate * inv_batch * grad_b[l][i]);
                for (std::size_t j = 0; j < weights_[l].cols(); ++j)
                    weights_[l].at(i, j) -= static_cast<float>(
                        learning_rate * inv_batch * grad_w[l].at(i, j));
            }
        }
    }
    return total_loss / static_cast<double>(data.size());
}

double
Mlp::accuracy(const Dataset &data) const
{
    std::size_t correct = 0;
    for (std::size_t s = 0; s < data.size(); ++s)
        if (static_cast<int>(argmax(forward(data.inputs[s]))) ==
            data.labels[s])
            ++correct;
    return static_cast<double>(correct) /
        static_cast<double>(data.size());
}

Vector
Mlp::forwardQuantized(const Vector &input, const FixedFormat &fmt) const
{
    // Quantise the input once, then run every layer entirely in the
    // EIE fixed-point datapath semantics.
    std::vector<std::int64_t> act(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        act[i] = quantize(input[i], fmt);

    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const Matrix &w = weights_[l];
        std::vector<std::int64_t> next(w.rows());
        for (std::size_t i = 0; i < w.rows(); ++i) {
            std::int64_t acc = quantize(biases_[l][i], fmt);
            for (std::size_t j = 0; j < w.cols(); ++j) {
                const std::int64_t wq = quantize(w.at(i, j), fmt);
                acc = macFixed(acc, wq, act[j], fmt, fmt);
            }
            next[i] = (l + 1 < weights_.size()) ? reluRaw(acc) : acc;
        }
        act = std::move(next);
    }

    Vector logits(act.size());
    for (std::size_t i = 0; i < act.size(); ++i)
        logits[i] = static_cast<float>(toDouble(act[i], fmt));
    return logits;
}

double
Mlp::accuracyQuantized(const Dataset &data, const FixedFormat &fmt) const
{
    std::size_t correct = 0;
    for (std::size_t s = 0; s < data.size(); ++s)
        if (static_cast<int>(argmax(
                forwardQuantized(data.inputs[s], fmt))) == data.labels[s])
            ++correct;
    return static_cast<double>(correct) /
        static_cast<double>(data.size());
}

} // namespace eie::nn
