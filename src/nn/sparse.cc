#include "nn/sparse.hh"

namespace eie::nn {

void
SparseMatrix::insert(std::size_t row, std::size_t col, float value)
{
    panic_if(row >= rows_ || col >= cols_,
             "sparse index (%zu,%zu) out of (%zu,%zu)", row, col, rows_,
             cols_);
    auto &column = columns_[col];
    panic_if(!column.empty() && column.back().row >= row,
             "rows must be inserted in ascending order per column "
             "(col %zu: %u then %zu)", col, column.back().row, row);
    column.push_back({static_cast<std::uint32_t>(row), value});
}

std::size_t
SparseMatrix::nnz() const
{
    std::size_t count = 0;
    for (const auto &column : columns_)
        count += column.size();
    return count;
}

double
SparseMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
        (static_cast<double>(rows_) * static_cast<double>(cols_));
}

Vector
SparseMatrix::spmv(const Vector &a) const
{
    panic_if(a.size() != cols_, "SpMV size mismatch: %zu cols vs %zu",
             cols_, a.size());
    std::vector<double> acc(rows_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) {
        const float aj = a[j];
        if (aj == 0.0f)
            continue;
        for (const SparseEntry &e : columns_[j])
            acc[e.row] += static_cast<double>(e.value) * aj;
    }
    Vector result(rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        result[i] = static_cast<float>(acc[i]);
    return result;
}

Matrix
SparseMatrix::toDense() const
{
    Matrix dense(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j)
        for (const SparseEntry &e : columns_[j])
            dense.at(e.row, j) = e.value;
    return dense;
}

SparseMatrix
SparseMatrix::fromDense(const Matrix &dense)
{
    SparseMatrix sparse(dense.rows(), dense.cols());
    for (std::size_t j = 0; j < dense.cols(); ++j)
        for (std::size_t i = 0; i < dense.rows(); ++i)
            if (dense.at(i, j) != 0.0f)
                sparse.insert(i, j, dense.at(i, j));
    return sparse;
}

SparseMatrix
SparseMatrix::rowSlice(std::size_t row_begin, std::size_t row_end) const
{
    panic_if(row_begin > row_end || row_end > rows_,
             "bad row slice [%zu,%zu) of %zu rows", row_begin, row_end,
             rows_);
    SparseMatrix slice(row_end - row_begin, cols_);
    for (std::size_t j = 0; j < cols_; ++j) {
        for (const SparseEntry &e : columns_[j]) {
            if (e.row >= row_begin && e.row < row_end)
                slice.insert(e.row - row_begin, j, e.value);
        }
    }
    return slice;
}

std::vector<SparseMatrix>
SparseMatrix::rowPartition(const std::vector<std::size_t> &boundaries) const
{
    panic_if(boundaries.size() < 2 || boundaries.front() != 0 ||
             boundaries.back() != rows_,
             "row partition boundaries must run from 0 to rows()");
    for (std::size_t b = 1; b < boundaries.size(); ++b)
        panic_if(boundaries[b] <= boundaries[b - 1],
                 "row partition boundaries must be strictly ascending");

    std::vector<SparseMatrix> parts;
    parts.reserve(boundaries.size() - 1);
    for (std::size_t b = 1; b < boundaries.size(); ++b)
        parts.emplace_back(boundaries[b] - boundaries[b - 1], cols_);

    for (std::size_t j = 0; j < cols_; ++j) {
        for (const SparseEntry &e : columns_[j]) {
            // Find the part containing this row (boundaries are few).
            std::size_t b = 1;
            while (boundaries[b] <= e.row)
                ++b;
            parts[b - 1].insert(e.row - boundaries[b - 1], j, e.value);
        }
    }
    return parts;
}

SparseMatrix
SparseMatrix::colSlice(std::size_t col_begin, std::size_t col_end) const
{
    panic_if(col_begin > col_end || col_end > cols_,
             "bad column slice [%zu,%zu) of %zu columns", col_begin,
             col_end, cols_);
    SparseMatrix slice(rows_, col_end - col_begin);
    for (std::size_t j = col_begin; j < col_end; ++j)
        for (const SparseEntry &e : columns_[j])
            slice.insert(e.row, j - col_begin, e.value);
    return slice;
}

std::vector<SparseEntry>
SparseMatrix::peColumnSlice(std::size_t j, unsigned pe, unsigned n_pe) const
{
    panic_if(n_pe == 0 || pe >= n_pe, "bad PE slice %u of %u", pe, n_pe);
    std::vector<SparseEntry> slice;
    for (const SparseEntry &e : column(j))
        if (e.row % n_pe == pe)
            slice.push_back(e);
    return slice;
}

} // namespace eie::nn
