#include "nn/tensor.hh"

#include <algorithm>
#include <cmath>

namespace eie::nn {

Vector
matVec(const Matrix &w, const Vector &a)
{
    panic_if(a.size() != w.cols(), "GEMV size mismatch: %zu cols vs %zu",
             w.cols(), a.size());
    Vector result(w.rows(), 0.0f);
    for (std::size_t i = 0; i < w.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < w.cols(); ++j)
            acc += static_cast<double>(w.at(i, j)) * a[j];
        result[i] = static_cast<float>(acc);
    }
    return result;
}

Vector
relu(const Vector &v)
{
    Vector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        result[i] = std::max(0.0f, v[i]);
    return result;
}

Vector
sigmoid(const Vector &v)
{
    Vector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        result[i] = static_cast<float>(1.0 / (1.0 + std::exp(-v[i])));
    return result;
}

Vector
tanhVec(const Vector &v)
{
    Vector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        result[i] = std::tanh(v[i]);
    return result;
}

Vector
softmax(const Vector &v)
{
    panic_if(v.empty(), "softmax of empty vector");
    const float max_v = *std::max_element(v.begin(), v.end());
    Vector result(v.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        result[i] = std::exp(v[i] - max_v);
        sum += result[i];
    }
    for (float &x : result)
        x = static_cast<float>(x / sum);
    return result;
}

std::size_t
argmax(const Vector &v)
{
    panic_if(v.empty(), "argmax of empty vector");
    return static_cast<std::size_t>(
        std::max_element(v.begin(), v.end()) - v.begin());
}

double
zeroFraction(const Vector &v)
{
    if (v.empty())
        return 0.0;
    std::size_t zeros = 0;
    for (float x : v)
        if (x == 0.0f)
            ++zeros;
    return static_cast<double>(zeros) / static_cast<double>(v.size());
}

double
maxAbsDiff(const Vector &a, const Vector &b)
{
    panic_if(a.size() != b.size(), "size mismatch %zu vs %zu", a.size(),
             b.size());
    double max_diff = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        max_diff = std::max(max_diff,
                            std::abs(static_cast<double>(a[i]) - b[i]));
    return max_diff;
}

} // namespace eie::nn
