/**
 * @file
 * Synthetic weight/activation generators.
 *
 * The paper evaluates on pruned AlexNet / VGG-16 / NeuralTalk weights
 * we cannot redistribute; every architectural quantity it measures
 * (cycles, load balance, padding overhead, SRAM traffic) depends only
 * on the sparsity structure and the layer dimensions, so we generate
 * matrices with the published shapes and densities (Table III):
 * Bernoulli(density) occupancy per element (giving the binomial
 * per-column jitter real pruned columns exhibit) and signed log-normal
 * magnitudes (pruning keeps large-magnitude weights, whose absolute
 * values are roughly log-normal).
 */

#ifndef EIE_NN_GENERATE_HH
#define EIE_NN_GENERATE_HH

#include "common/random.hh"
#include "nn/sparse.hh"
#include "nn/tensor.hh"

namespace eie::nn {

/** Knobs for synthetic sparse weight generation. */
struct WeightGenOptions
{
    /** Target fraction of non-zero elements. */
    double density = 0.1;
    /** Log-normal mu of |w| (underlying normal). */
    double log_mu = -2.0;
    /** Log-normal sigma of |w|. */
    double log_sigma = 0.5;

    /**
     * Structured row sparsity: per-row density multipliers are a
     * product of log-normal factors drawn at three nested block
     * scales (row_block, 4x, 16x rows), normalised so the overall
     * density stays on target. Magnitude pruning of real networks
     * produces exactly this kind of multi-scale clustered row
     * importance — near-empty stretches of many lengths — which is
     * what makes the relative-index padding sensitive to the PE
     * count (Figure 12): a sparse stretch of L rows costs padding
     * until the PE count exceeds ~L/16, so a spectrum of stretch
     * lengths yields the paper's gradual padding decline.
     * Sigma 0 disables the structure (pure i.i.d. Bernoulli).
     */
    double row_block_sigma = 0.0;
    unsigned row_block = 64;
};

/**
 * Generate a rows x cols sparse matrix with ~density occupancy.
 * Per-element Bernoulli sampling; deterministic for a given rng state.
 */
SparseMatrix makeSparseWeights(std::size_t rows, std::size_t cols,
                               const WeightGenOptions &opts, Rng &rng);

/** Dense Gaussian matrix (for trainer initialisation and tests). */
Matrix makeDenseWeights(std::size_t rows, std::size_t cols, double stddev,
                        Rng &rng);

/**
 * Generate an activation vector of length @p n where a fraction
 * @p density of entries are non-zero (exactly round(n*density) of
 * them, at uniformly random positions), mimicking post-ReLU sparsity.
 * Non-zero magnitudes are |N(0,1)| scaled by @p scale.
 */
Vector makeActivations(std::size_t n, double density, Rng &rng,
                       double scale = 1.0);

} // namespace eie::nn

#endif // EIE_NN_GENERATE_HH
