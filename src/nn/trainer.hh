/**
 * @file
 * A small MLP with SGD training, used by the Figure 10 reproduction.
 *
 * The paper measures ImageNet/AlexNet prediction accuracy under 32-bit
 * float, 32/16/8-bit fixed-point arithmetic. Lacking ImageNet, we train
 * an MLP on a synthetic Gaussian-cluster classification task tuned so
 * the float32 accuracy lands near the paper's ~80% operating point,
 * then run bit-exact fixed-point inference at each precision. The
 * qualitative shape (16-bit ~ float, 8-bit collapses) is the
 * architectural claim being reproduced.
 */

#ifndef EIE_NN_TRAINER_HH
#define EIE_NN_TRAINER_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "common/random.hh"
#include "nn/tensor.hh"

namespace eie::nn {

/** Labelled classification dataset. */
struct Dataset
{
    std::vector<Vector> inputs;
    std::vector<int> labels;

    std::size_t size() const { return inputs.size(); }
};

/**
 * Synthetic Gaussian-cluster classification task: class means drawn on
 * a sphere, samples = mean + isotropic noise. Task hardness (and so
 * the float accuracy ceiling) is set by the radius/noise ratio.
 * Train and test sets must be sampled from the same task instance so
 * they share the class means.
 */
class ClusterTask
{
  public:
    /** Draw the class means. */
    ClusterTask(std::size_t dim, int n_classes, double cluster_radius,
                double noise_stddev, Rng &rng);

    /** Sample a labelled dataset from the task. */
    Dataset sample(std::size_t n_samples, Rng &rng) const;

    std::size_t dim() const { return dim_; }
    int classes() const { return n_classes_; }

  private:
    std::size_t dim_;
    int n_classes_;
    double noise_stddev_;
    std::vector<Vector> means_;
};

/** Convenience: a single dataset from a freshly drawn task. */
Dataset makeClusterDataset(std::size_t n_samples, std::size_t dim,
                           int n_classes, double cluster_radius,
                           double noise_stddev, Rng &rng);

/** Multi-layer perceptron with ReLU hidden layers and logit outputs. */
class Mlp
{
  public:
    /**
     * @param dims layer widths, e.g. {64, 128, 10} = one hidden layer
     * @param rng  initialisation randomness (He-scaled Gaussians)
     */
    Mlp(std::vector<std::size_t> dims, Rng &rng);

    /** Forward pass to raw logits (float). */
    Vector forward(const Vector &input) const;

    /**
     * One epoch of minibatch SGD with softmax cross-entropy loss.
     *
     * @return mean training loss over the epoch
     */
    double trainEpoch(const Dataset &data, double learning_rate,
                      std::size_t batch_size, Rng &rng);

    /** Top-1 accuracy of the float model. */
    double accuracy(const Dataset &data) const;

    /**
     * Top-1 accuracy with bit-exact fixed-point inference: weights,
     * biases and activations quantised to @p fmt, multiply-accumulate
     * in the EIE datapath semantics (wide product, realign, saturate).
     */
    double accuracyQuantized(const Dataset &data,
                             const FixedFormat &fmt) const;

    /** Number of weight layers. */
    std::size_t layerCount() const { return weights_.size(); }

    /** Weight matrix of layer @p l (outputs x inputs). */
    const Matrix &layerWeights(std::size_t l) const { return weights_[l]; }

  private:
    Vector forwardQuantized(const Vector &input,
                            const FixedFormat &fmt) const;

    std::vector<std::size_t> dims_;
    std::vector<Matrix> weights_; ///< weights_[l] is dims[l+1] x dims[l]
    std::vector<Vector> biases_;
};

} // namespace eie::nn

#endif // EIE_NN_TRAINER_HH
