/**
 * @file
 * Column-major sparse matrix — the natural shape for EIE, which walks
 * non-zero weights column-by-column (one column per broadcast input
 * activation, §III-B of the paper).
 */

#ifndef EIE_NN_SPARSE_HH
#define EIE_NN_SPARSE_HH

#include <cstdint>
#include <vector>

#include "nn/tensor.hh"

namespace eie::nn {

/** One stored non-zero: (row index, value). */
struct SparseEntry
{
    std::uint32_t row = 0;
    float value = 0.0f;

    bool
    operator==(const SparseEntry &other) const
    {
        return row == other.row && value == other.value;
    }
};

/**
 * Sparse matrix stored as per-column lists of (row, value) entries,
 * rows sorted ascending within each column.
 */
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /** Create an empty rows x cols sparse matrix. */
    SparseMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), columns_(cols)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Entries of column @p j, sorted by row. */
    const std::vector<SparseEntry> &
    column(std::size_t j) const
    {
        panic_if(j >= cols_, "column %zu out of %zu", j, cols_);
        return columns_[j];
    }

    /**
     * Append an entry to column @p j. Rows must be inserted in
     * ascending order within a column; duplicate rows are an error.
     */
    void insert(std::size_t row, std::size_t col, float value);

    /** Total number of stored non-zeros. */
    std::size_t nnz() const;

    /** nnz / (rows * cols). */
    double density() const;

    /** y = W a (dense result, double accumulation). */
    Vector spmv(const Vector &a) const;

    /** Densify (intended for small matrices in tests/examples). */
    Matrix toDense() const;

    /** Build from a dense matrix, keeping exact non-zeros. */
    static SparseMatrix fromDense(const Matrix &dense);

    /**
     * Extract rows [row_begin, row_end) as a new sparse matrix with
     * row indices rebased to zero. Used by the compiler to split
     * layers whose output exceeds the accelerator's accumulator
     * capacity into row batches (§IV "Activation Read/Write").
     */
    SparseMatrix rowSlice(std::size_t row_begin, std::size_t row_end) const;

    /**
     * Partition rows at the given ascending @p boundaries (must start
     * with 0 and end with rows()) in a single pass — equivalent to
     * rowSlice on each consecutive boundary pair but O(nnz) total.
     */
    std::vector<SparseMatrix>
    rowPartition(const std::vector<std::size_t> &boundaries) const;

    /** Extract columns [col_begin, col_end), indices rebased to 0. */
    SparseMatrix colSlice(std::size_t col_begin, std::size_t col_end) const;

    /** Entries of column j restricted to rows ≡ pe (mod n_pe), i.e.
     *  the slice PE @p pe owns under row interleaving (§III-C). */
    std::vector<SparseEntry> peColumnSlice(std::size_t j, unsigned pe,
                                           unsigned n_pe) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::vector<SparseEntry>> columns_;
};

} // namespace eie::nn

#endif // EIE_NN_SPARSE_HH
