/**
 * @file
 * Layer abstractions for the golden model: fully-connected layers over
 * sparse weights (the compressed regime EIE targets) with optional
 * bias and non-linearity.
 */

#ifndef EIE_NN_LAYER_HH
#define EIE_NN_LAYER_HH

#include <string>

#include "nn/sparse.hh"
#include "nn/tensor.hh"

namespace eie::nn {

/** Element-wise non-linearity applied after the M×V. */
enum class Nonlinearity { None, ReLU, Sigmoid, Tanh };

/** Apply @p f element-wise. */
Vector applyNonlinearity(Nonlinearity f, const Vector &v);

/** A fully-connected layer b = f(W a + v) (paper Eq. 1). */
class FcLayer
{
  public:
    /**
     * @param name     layer name, e.g. "Alex-6"
     * @param weights  sparse weight matrix (outputs x inputs)
     * @param nonlin   post-M×V non-linearity
     */
    FcLayer(std::string name, SparseMatrix weights,
            Nonlinearity nonlin = Nonlinearity::ReLU);

    /** Same, with an explicit bias vector (length = rows of W). */
    FcLayer(std::string name, SparseMatrix weights, Vector bias,
            Nonlinearity nonlin);

    /** Golden forward pass. */
    Vector forward(const Vector &input) const;

    const std::string &name() const { return name_; }
    const SparseMatrix &weights() const { return weights_; }
    const Vector &bias() const { return bias_; }
    Nonlinearity nonlinearity() const { return nonlin_; }

    std::size_t inputSize() const { return weights_.cols(); }
    std::size_t outputSize() const { return weights_.rows(); }

  private:
    std::string name_;
    SparseMatrix weights_;
    Vector bias_;
    Nonlinearity nonlin_;
};

} // namespace eie::nn

#endif // EIE_NN_LAYER_HH
