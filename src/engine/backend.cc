#include "engine/backend.hh"

#include <atomic>

#include "common/logging.hh"
#include "engine/backends.hh"
#include "obs/metrics.hh"

namespace eie::engine {

namespace {

void
checkInputs(const ExecutionBackend &backend,
            const core::kernel::Batch &inputs)
{
    for (const auto &input : inputs)
        panic_if(input.size() != backend.inputSize(),
                 "input length %zu != network input size %zu",
                 input.size(), backend.inputSize());
}

} // namespace

std::uint64_t
RunReport::totalCycles() const
{
    std::uint64_t total = 0;
    for (const auto &frame : stats)
        for (const core::RunStats &layer : frame)
            total += layer.cycles;
    return total;
}

double
RunReport::totalTimeUs() const
{
    double total = 0.0;
    for (const auto &frame : stats)
        for (const core::RunStats &layer : frame)
            total += layer.timeUs();
    return total;
}

ExecutionBackend::ExecutionBackend(
    std::string name, const std::vector<const core::LayerPlan *> &plans)
    : name_(std::move(name))
{
    fatal_if(plans.empty(), "backend needs at least one layer");
    for (std::size_t i = 0; i < plans.size(); ++i) {
        fatal_if(plans[i] == nullptr, "layer %zu is null", i);
        fatal_if(i > 0 && plans[i]->input_size !=
                              plans[i - 1]->output_size,
                 "layer '%s' input size %zu does not chain with "
                 "previous output size %zu", plans[i]->name.c_str(),
                 plans[i]->input_size, plans[i - 1]->output_size);
    }
    input_size_ = plans.front()->input_size;
    output_size_ = plans.back()->output_size;
    layer_count_ = plans.size();
}

RunReport
ExecutionBackend::run(const std::vector<std::int64_t> &input_raw) const
{
    return runBatch(core::kernel::Batch{input_raw});
}

const std::vector<std::string> &
backendNames()
{
    static const std::vector<std::string> names{"scalar", "compiled",
                                                "sim"};
    return names;
}

void
validateBackendName(const std::string &name)
{
    std::string known;
    for (const std::string &n : backendNames()) {
        if (n == name)
            return;
        known += (known.empty() ? "" : ", ") + n;
    }
    fatal("unknown execution backend '%s' (known: %s)", name.c_str(),
          known.c_str());
}

std::unique_ptr<ExecutionBackend>
makeBackend(const std::string &name, const core::EieConfig &config,
            const std::vector<const core::LayerPlan *> &plans,
            unsigned threads, core::kernel::KernelVariant kernel,
            core::kernel::Residency residency)
{
    validateBackendName(name);
    if (name == "scalar")
        return std::make_unique<ScalarBackend>(config, plans);
    if (name == "compiled")
        return std::make_unique<CompiledBackend>(config, plans, threads,
                                                 kernel, residency);
    panic_if(name != "sim", "backend registry out of sync with '%s'",
             name.c_str());
    return std::make_unique<SimBackend>(config, plans);
}

// ------------------------------------------------------------- scalar

ScalarBackend::ScalarBackend(
    const core::EieConfig &config,
    const std::vector<const core::LayerPlan *> &plans)
    : ExecutionBackend("scalar", plans), model_(config), plans_(plans)
{}

RunReport
ScalarBackend::runBatch(const core::kernel::Batch &inputs) const
{
    checkInputs(*this, inputs);
    RunReport report;
    report.outputs.reserve(inputs.size());
    for (const auto &input : inputs) {
        std::vector<std::int64_t> act = input;
        for (const core::LayerPlan *plan : plans_)
            act = model_.run(*plan, act).output_raw;
        report.outputs.push_back(std::move(act));
    }
    return report;
}

// ----------------------------------------------------------- compiled

namespace {

/** Resident stream bytes (decoded + compressed) over a whole stack. */
std::uint64_t
stackResidentBytes(const CompiledStack &layers)
{
    std::uint64_t total = 0;
    for (const core::kernel::CompiledLayer &layer : layers)
        total += layer.residentStreamBytes();
    return total;
}

/** Process-wide resident stream footprint across every live compiled
 *  stack, mirrored into the `eie_model_resident_bytes` gauge. */
std::atomic<std::int64_t> g_resident_bytes{0};

void
accountResidentBytes(std::int64_t delta)
{
    const std::int64_t total =
        g_resident_bytes.fetch_add(delta, std::memory_order_relaxed) +
        delta;
    obs::processRegistry()
        .gauge("eie_model_resident_bytes")
        .set(static_cast<double>(total));
}

} // namespace

std::shared_ptr<const CompiledStack>
compileLayerStack(const core::EieConfig &config,
                  const std::vector<const core::LayerPlan *> &plans,
                  const core::kernel::CompileOptions &options)
{
    auto layers = std::make_unique<CompiledStack>();
    layers->reserve(plans.size());
    for (const core::LayerPlan *plan : plans) {
        fatal_if(plan == nullptr, "null layer plan");
        layers->push_back(core::kernel::CompiledLayer::compile(
            *plan, config, options));
    }
    // The gauge tracks live resident bytes: credited here, debited by
    // the deleter when the last shared reference drops.
    const std::int64_t bytes =
        static_cast<std::int64_t>(stackResidentBytes(*layers));
    accountResidentBytes(bytes);
    return std::shared_ptr<const CompiledStack>(
        layers.release(), [bytes](const CompiledStack *stack) {
            accountResidentBytes(-bytes);
            delete stack;
        });
}

core::kernel::CompileOptions
compiledStackOptions(unsigned threads,
                     core::kernel::KernelVariant kernel,
                     core::kernel::Residency residency)
{
    core::kernel::CompileOptions options;
    // Auto can resolve to Fused or ActSparse, and a single-thread
    // ActSparse run walks the fused stream too — keep it reachable.
    options.fused_stream = threads <= 1 &&
        (kernel == core::kernel::KernelVariant::Auto ||
         kernel == core::kernel::KernelVariant::Fused ||
         kernel == core::kernel::KernelVariant::ActSparse);
    options.residency = residency;
    // An explicit "compressed" kernel request must stay executable
    // even under decoded residency: compile both stream forms.
    options.compressed_stream =
        kernel == core::kernel::KernelVariant::Compressed;
    return options;
}

CompiledBackend::CompiledBackend(
    const core::EieConfig &config,
    const std::vector<const core::LayerPlan *> &plans, unsigned threads,
    core::kernel::KernelVariant kernel,
    core::kernel::Residency residency)
    : CompiledBackend(
          plans,
          compileLayerStack(
              config, plans,
              compiledStackOptions(threads, kernel, residency)),
          threads, kernel)
{}

CompiledBackend::CompiledBackend(
    const std::vector<const core::LayerPlan *> &plans,
    std::shared_ptr<const CompiledStack> layers, unsigned threads,
    core::kernel::KernelVariant kernel)
    : ExecutionBackend("compiled", plans), layers_(std::move(layers)),
      kernel_(kernel)
{
    fatal_if(!layers_ || layers_->size() != plans.size(),
             "compiled stack does not match the plan stack");
    // Surface an ineligible explicit "vector" request at construction
    // (listing the offending layer) instead of on the first runBatch.
    if (kernel_ == core::kernel::KernelVariant::Vector)
        for (const core::kernel::CompiledLayer &layer : *layers_)
            core::kernel::resolveKernelVariant(kernel_, layer,
                                               /*batch=*/1,
                                               /*threads=*/1);
    if (threads > 1)
        pool_ = std::make_unique<core::kernel::WorkerPool>(threads);
}

unsigned
CompiledBackend::threads() const
{
    return pool_ ? pool_->threads() : 1;
}

RunReport
CompiledBackend::runBatch(const core::kernel::Batch &inputs) const
{
    checkInputs(*this, inputs);
    // The pool's parallelFor is single-caller, so pooled execution
    // serializes; without a pool the layers are read-only shared
    // state and concurrent callers proceed in parallel.
    std::unique_lock<std::mutex> lock(pool_mutex_, std::defer_lock);
    if (pool_)
        lock.lock();
    RunReport report;
    report.dispatch.reserve(layers_->size());
    const core::kernel::Batch *act = &inputs;
    for (const core::kernel::CompiledLayer &layer : *layers_) {
        core::kernel::DispatchInfo info;
        report.outputs = core::kernel::runBatch(layer, *act, pool_.get(),
                                                kernel_, &info);
        report.dispatch.push_back(
            {layer.name, core::kernel::kernelVariantName(info.variant),
             info.act_density,
             core::kernel::residencyName(layer.residency),
             layer.decoded_stream_bytes, layer.compressed_stream_bytes,
             info.decode_us});
        act = &report.outputs;
    }
    return report;
}

// ---------------------------------------------------------------- sim

SimBackend::SimBackend(const core::EieConfig &config,
                       const std::vector<const core::LayerPlan *> &plans)
    : ExecutionBackend("sim", plans), accelerator_(config)
{
    core::kernel::CompileOptions options;
    options.host_stream = false; // the sim walks only the SimEntry image
    options.sim_stream = true;
    layers_.reserve(plans.size());
    for (const core::LayerPlan *plan : plans)
        layers_.push_back(
            core::kernel::CompiledLayer::compile(*plan, config,
                                                 options));
}

RunReport
SimBackend::runBatch(const core::kernel::Batch &inputs) const
{
    checkInputs(*this, inputs);
    RunReport report;
    report.outputs.reserve(inputs.size());
    report.stats.reserve(inputs.size());
    for (const auto &input : inputs) {
        std::vector<std::int64_t> act = input;
        std::vector<core::RunStats> frame_stats;
        frame_stats.reserve(layers_.size());
        for (const core::kernel::CompiledLayer &layer : layers_) {
            core::RunResult result = accelerator_.run(layer, act);
            act = std::move(result.output_raw);
            frame_stats.push_back(std::move(result.stats));
        }
        report.outputs.push_back(std::move(act));
        report.stats.push_back(std::move(frame_stats));
    }
    return report;
}

} // namespace eie::engine
