#include "engine/lstm_session.hh"

#include <stdexcept>

namespace eie::engine {

bool
LstmShape::derive(std::size_t model_input_size,
                  std::size_t model_output_size, LstmShape &out,
                  std::string &error)
{
    const auto describe = [&]() {
        return std::to_string(model_input_size) + " -> " +
            std::to_string(model_output_size);
    };
    if (model_output_size % 4 != 0 || model_output_size == 0) {
        error = "model " + describe() +
            " is not LSTM-shaped: output size is not 4H";
        return false;
    }
    const std::size_t hidden = model_output_size / 4;
    if (model_input_size < hidden + 2) {
        error = "model " + describe() +
            " is not LSTM-shaped: input size leaves no room for "
            "[x; h; 1] with H = " +
            std::to_string(hidden);
        return false;
    }
    out.hidden_size = hidden;
    out.input_size = model_input_size - hidden - 1;
    return true;
}

LstmSession::LstmSession(const core::EieConfig &config,
                         const LstmShape &shape)
    : shape_(shape), functional_(config),
      gates_(nn::SparseMatrix(4 * shape.hidden_size,
                              shape.input_size + shape.hidden_size + 1),
             shape.input_size, shape.hidden_size),
      state_(gates_.initialState())
{}

void
LstmSession::reset()
{
    state_ = gates_.initialState();
}

nn::Vector
LstmSession::step(const nn::Vector &x, const Mxv &mxv)
{
    if (x.size() != shape_.input_size)
        throw std::invalid_argument(
            "LSTM step input length " + std::to_string(x.size()) +
            " != " + std::to_string(shape_.input_size));

    const nn::Vector packed = gates_.packInput(x, state_);
    std::vector<std::int64_t> preact_raw =
        mxv(functional_.quantizeInput(packed));
    if (preact_raw.size() != 4 * shape_.hidden_size)
        throw std::runtime_error(
            "LSTM M×V returned " + std::to_string(preact_raw.size()) +
            " pre-activations, expected 4H = " +
            std::to_string(4 * shape_.hidden_size));

    nn::LstmState next =
        gates_.applyGates(functional_.dequantize(preact_raw), state_);
    state_ = std::move(next);
    ++steps_;
    return state_.h;
}

} // namespace eie::engine
