/**
 * @file
 * The three concrete execution backends. Most callers should go
 * through makeBackend() and program against ExecutionBackend; the
 * concrete types are exposed for tests and for callers that need a
 * backend-specific knob at construction time.
 */

#ifndef EIE_ENGINE_BACKENDS_HH
#define EIE_ENGINE_BACKENDS_HH

#include <mutex>

#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/kernel/worker_pool.hh"
#include "engine/backend.hh"

namespace eie::engine {

/** The scalar interpreter oracle (FunctionalModel::run per frame). */
class ScalarBackend : public ExecutionBackend
{
  public:
    /** Keeps the plan pointers: @p plans must outlive the backend. */
    ScalarBackend(const core::EieConfig &config,
                  const std::vector<const core::LayerPlan *> &plans);

    RunReport runBatch(const core::kernel::Batch &inputs) const override;

  private:
    core::FunctionalModel model_;
    std::vector<const core::LayerPlan *> plans_;
};

/** A pre-decoded layer stack shareable between backends (read-only
 *  after construction; see compileLayerStack). */
using CompiledStack = std::vector<core::kernel::CompiledLayer>;

/**
 * Lower @p plans into the pre-decoded kernel format once, for sharing
 * across several CompiledBackend instances: replicated serving shards
 * execute the same immutable arrays instead of compiling (and
 * holding) one copy each. @p options tunes the compile — e.g. skip
 * the fused stream (a second resident copy of the entries) when
 * every consumer runs a multi-thread pool, where the fused variant
 * is unreachable.
 *
 * The returned stack also keeps the process-wide
 * `eie_model_resident_bytes` gauge current: the stack's resident
 * stream footprint is added on compile and subtracted when the last
 * shared reference drops.
 */
std::shared_ptr<const CompiledStack>
compileLayerStack(const core::EieConfig &config,
                  const std::vector<const core::LayerPlan *> &plans,
                  const core::kernel::CompileOptions &options = {});

/**
 * Compile options for a stack whose consumers all run @p threads
 * worker threads with the @p kernel variant: the fused stream (a
 * second resident copy of the entries) is compiled only where the
 * fused variant is reachable — serial consumers requesting Fused or
 * Auto. A multi-thread pool demotes Fused to the per-slice loop, and
 * explicit Reference/Vector never walk it. The one rule both
 * CompiledBackend and the serving cluster's shared stacks follow.
 *
 * @p residency selects the resident stream form; an explicit
 * Compressed kernel request additionally compiles the compressed
 * stream alongside decoded residency so the variant is executable.
 */
core::kernel::CompileOptions
compiledStackOptions(unsigned threads,
                     core::kernel::KernelVariant kernel,
                     core::kernel::Residency residency =
                         core::kernel::Residency::Decoded);

/**
 * The compiled host-kernel path: pre-decoded SoA streams, column
 * sweeps amortized over the batch, PE-parallel worker pool, inner
 * loop selected by kernel variant (core/kernel/variant.hh; Auto picks
 * the fastest bit-exact loop per call). Compiles every layer at
 * construction (or adopts a pre-compiled shared stack) and does not
 * retain the plans. Concurrent runBatch() callers serialize on the
 * shared pool.
 */
class CompiledBackend : public ExecutionBackend
{
  public:
    CompiledBackend(const core::EieConfig &config,
                    const std::vector<const core::LayerPlan *> &plans,
                    unsigned threads,
                    core::kernel::KernelVariant kernel =
                        core::kernel::KernelVariant::Auto,
                    core::kernel::Residency residency =
                        core::kernel::Residency::Decoded);

    /** Adopt @p layers compiled by compileLayerStack() from the same
     *  plan stack — the layers are shared, not copied, so N backends
     *  over one stack hold one set of pre-decoded arrays. */
    CompiledBackend(const std::vector<const core::LayerPlan *> &plans,
                    std::shared_ptr<const CompiledStack> layers,
                    unsigned threads,
                    core::kernel::KernelVariant kernel =
                        core::kernel::KernelVariant::Auto);

    unsigned threads() const;

    /** The kernel variant every runBatch() dispatches with. */
    core::kernel::KernelVariant kernel() const { return kernel_; }

    RunReport runBatch(const core::kernel::Batch &inputs) const override;

  private:
    std::shared_ptr<const CompiledStack> layers_;
    core::kernel::KernelVariant kernel_;
    mutable std::mutex pool_mutex_; ///< parallelFor is single-caller
    mutable std::unique_ptr<core::kernel::WorkerPool> pool_;
};

/**
 * The cycle-accurate simulator path. Compiles every layer (with the
 * simulator stream) at construction and does not retain the plans;
 * each frame runs the full timing model and contributes one
 * RunStats row per layer to the report.
 */
class SimBackend : public ExecutionBackend
{
  public:
    SimBackend(const core::EieConfig &config,
               const std::vector<const core::LayerPlan *> &plans);

    bool timed() const override { return true; }

    RunReport runBatch(const core::kernel::Batch &inputs) const override;

  private:
    core::Accelerator accelerator_;
    std::vector<core::kernel::CompiledLayer> layers_;
};

} // namespace eie::engine

#endif // EIE_ENGINE_BACKENDS_HH
