#include "engine/server.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/faultpoint.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace eie::engine {

const char *
DeadlineExpired::what() const noexcept
{
    return "request deadline expired before execution";
}

const char *
ServerStopped::what() const noexcept
{
    return "request submitted to a stopped InferenceServer";
}

const char *
ServerOverloaded::what() const noexcept
{
    return "request shed: server queue is full";
}

std::vector<double>
openLoopArrivals(std::size_t count, double rate_per_sec, Rng &rng)
{
    std::vector<double> arrivals(count, 0.0);
    if (rate_per_sec <= 0.0)
        return arrivals;
    double clock_s = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        // Clamp the uniform draw away from 1.0: log(0) would make
        // this arrival (and every later one) infinitely late.
        const double u =
            std::min(rng.uniformReal(0.0, 1.0), 1.0 - 1e-12);
        clock_s += -std::log(1.0 - u) / rate_per_sec;
        arrivals[i] = clock_s;
    }
    return arrivals;
}

namespace detail {

FormedBatch
formBatch(std::deque<Pending> &queue, std::size_t max_batch,
          std::chrono::steady_clock::time_point now)
{
    FormedBatch formed;

    // Expired requests never reach the backend, drained or not.
    std::deque<Pending> live;
    for (Pending &pending : queue) {
        if (pending.deadline <= now)
            formed.dropped.push_back(std::move(pending));
        else
            live.push_back(std::move(pending));
    }
    queue.swap(live);
    if (queue.empty())
        return formed;

    // Stable selection by descending priority: order[] is arrival
    // order, so equal priorities keep FIFO semantics.
    std::vector<std::size_t> order(queue.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&queue](std::size_t a, std::size_t b) {
                         return queue[a].priority > queue[b].priority;
                     });
    const std::size_t take = std::min(queue.size(), max_batch);
    std::vector<bool> taken(queue.size(), false);
    formed.batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        taken[order[i]] = true;
        formed.batch.push_back(std::move(queue[order[i]]));
    }
    std::deque<Pending> rest;
    for (std::size_t i = 0; i < queue.size(); ++i)
        if (!taken[i])
            rest.push_back(std::move(queue[i]));
    queue.swap(rest);
    return formed;
}

} // namespace detail

/** Latency reservoir size: large enough for stable p99 estimates,
 *  small enough that stats() copies are trivial. */
static constexpr std::size_t kLatencySampleCap = 16384;

void
LatencyReservoir::record(double latency_us)
{
    ++seen_;
    if (sample_.size() < kLatencySampleCap) {
        sample_.push_back(latency_us);
        return;
    }
    // Algorithm R: keep each seen latency with probability cap/seen,
    // using a cheap xorshift stream (statistics, not cryptography).
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    const std::uint64_t slot = rng_ % seen_;
    if (slot < kLatencySampleCap)
        sample_[slot] = latency_us;
}

double
percentileOf(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0.0;
    // Nearest-rank via the shared index rule. The old computation
    // (floor(p * (n-1))) under-selected near the tail: p99 of a
    // two-element sample returned the *minimum*.
    const std::size_t rank = obs::nearestRankIndex(sample.size(), p);
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<std::ptrdiff_t>(rank),
                     sample.end());
    return sample[rank];
}

namespace {

/** Fail a request's future with the deadline-drop error. */
void
failDropped(detail::Pending &pending)
{
    pending.promise.set_exception(
        std::make_exception_ptr(DeadlineExpired{}));
}

} // namespace

InferenceServer::InferenceServer(
    std::unique_ptr<ExecutionBackend> backend,
    const ServerOptions &options)
    : backend_(std::move(backend)), options_(options),
      m_requests_(obs::processRegistry().counter(
          "eie_server_requests_total")),
      m_batches_(obs::processRegistry().counter(
          "eie_server_batches_total")),
      m_dropped_deadline_(obs::processRegistry().counter(
          "eie_server_dropped_deadline_total")),
      m_shed_(obs::processRegistry().counter(
          "eie_server_shed_total")),
      m_latency_(obs::processRegistry().histogram(
          "eie_server_latency_us")),
      m_queue_depth_(obs::processRegistry().gauge(
          "eie_server_queue_depth")),
      m_forming_delay_(obs::processRegistry().gauge(
          "eie_server_forming_delay_us"))
{
    fatal_if(!backend_, "server needs a backend");
    fatal_if(options_.max_batch == 0, "max_batch must be >= 1");
    // The adaptive window lives in [min_delay, max_delay]; it starts
    // at max_delay (the fixed-window behavior) and only shrinks once
    // sweeps are observed running nearly empty.
    options_.min_delay = std::min(options_.min_delay,
                                  options_.max_delay);
    forming_delay_ = options_.max_delay;
    batcher_ = std::thread([this] { batcherLoop(); });
}

InferenceServer::~InferenceServer()
{
    stop();
}

std::future<std::vector<std::int64_t>>
InferenceServer::submit(std::vector<std::int64_t> input_raw,
                        const SubmitOptions &options)
{
    fatal_if(input_raw.size() != backend_->inputSize(),
             "input length %zu != network input size %zu",
             input_raw.size(), backend_->inputSize());

    detail::Pending pending;
    pending.input = std::move(input_raw);
    pending.enqueued = std::chrono::steady_clock::now();
    if (options.deadline.count() > 0)
        pending.deadline = pending.enqueued + options.deadline;
    pending.priority = options.priority;
    pending.trace_id = options.trace_id;
    std::future<std::vector<std::int64_t>> future =
        pending.promise.get_future();

    if (fault::fire("shard.submit_fail", options_.fault_tag)) {
        pending.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("injected fault: shard.submit_fail")));
        return future;
    }

    bool shed_newcomer = false;
    detail::Pending evicted;
    bool have_evicted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // A cluster tearing down races its clients' last submits;
            // that is a per-request failure, not a process error.
            pending.promise.set_exception(
                std::make_exception_ptr(ServerStopped{}));
            return future;
        }
        if (options_.max_queue > 0 &&
            queue_.size() >= options_.max_queue) {
            if (options_.shed_policy ==
                ShedPolicy::EvictLowestPriority) {
                // Oldest request at the lowest priority level loses
                // its slot — but only to a strictly higher-priority
                // newcomer, so equal-priority traffic stays FIFO.
                auto victim = queue_.begin();
                for (auto it = queue_.begin(); it != queue_.end();
                     ++it)
                    if (it->priority < victim->priority)
                        victim = it;
                if (victim->priority < pending.priority) {
                    evicted = std::move(*victim);
                    queue_.erase(victim);
                    have_evicted = true;
                } else {
                    shed_newcomer = true;
                }
            } else {
                shed_newcomer = true;
            }
        }
        if (!shed_newcomer && options_.max_queue > 0 &&
            options_.shed_infeasible_deadlines &&
            pending.deadline !=
                std::chrono::steady_clock::time_point::max()) {
            // Every max_batch requests ahead cost up to one forming
            // window; a deadline inside that estimate would only be
            // admitted to expire in the queue — shed it now instead
            // so the client learns "overloaded", not "too late".
            const auto sweeps = queue_.size() / options_.max_batch + 1;
            const auto earliest_done = pending.enqueued +
                sweeps * options_.max_delay;
            if (pending.deadline < earliest_done)
                shed_newcomer = true;
        }
        const std::uint64_t shed_now = (shed_newcomer ? 1u : 0u) +
            (have_evicted ? 1u : 0u);
        requests_shed_ += shed_now;
        if (shed_now > 0)
            m_shed_.add(shed_now);
        if (!shed_newcomer) {
            queue_.push_back(std::move(pending));
            max_queue_depth_ =
                std::max(max_queue_depth_, queue_.size());
        }
        m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
    // Fail shed requests outside the lock: set_exception wakes waiters.
    if (shed_newcomer)
        pending.promise.set_exception(
            std::make_exception_ptr(ServerOverloaded{}));
    if (have_evicted)
        evicted.promise.set_exception(
            std::make_exception_ptr(ServerOverloaded{}));
    if (!shed_newcomer)
        work_cv_.notify_all();
    return future;
}

std::vector<std::int64_t>
InferenceServer::infer(std::vector<std::int64_t> input_raw)
{
    return submit(std::move(input_raw)).get();
}

std::chrono::steady_clock::time_point
InferenceServer::nextWakeup() const
{
    auto wake = queue_.front().enqueued + forming_delay_;
    for (const detail::Pending &pending : queue_)
        wake = std::min(wake, pending.deadline);
    return wake;
}

void
InferenceServer::batcherLoop()
{
    for (;;) {
        detail::FormedBatch formed;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and drained: done.
                break;
            }

            // Deadline- and size-bounded forming: hold the oldest
            // request until the batch fills or its forming deadline
            // (max_delay) passes. A queued request's own deadline
            // wakes the batcher early so it is dropped promptly —
            // but a drop must only drop, never cut the forming wait
            // short for the still-live requests.
            for (;;) {
                const auto now = std::chrono::steady_clock::now();
                std::deque<detail::Pending> live;
                for (detail::Pending &pending : queue_) {
                    if (pending.deadline <= now)
                        formed.dropped.push_back(std::move(pending));
                    else
                        live.push_back(std::move(pending));
                }
                queue_.swap(live);
                if (stopping_ || queue_.empty() ||
                    queue_.size() >= options_.max_batch)
                    break;
                if (queue_.front().enqueued + forming_delay_ <= now)
                    break;
                // Re-arm when a newly submitted request carries an
                // earlier deadline than this wait was computed for:
                // submit() notifies, and nextWakeup() moving earlier
                // pops the wait so the next pass drops on time.
                const auto wake = nextWakeup();
                work_cv_.wait_until(lock, wake, [this, wake] {
                    return stopping_ ||
                        queue_.size() >= options_.max_batch ||
                        nextWakeup() < wake;
                });
            }

            detail::FormedBatch selected = detail::formBatch(
                queue_, options_.max_batch,
                std::chrono::steady_clock::now());
            formed.batch = std::move(selected.batch);
            for (detail::Pending &pending : selected.dropped)
                formed.dropped.push_back(std::move(pending));
            dropped_deadline_ += formed.dropped.size();
            if (!formed.dropped.empty())
                m_dropped_deadline_.add(formed.dropped.size());
            m_queue_depth_.set(static_cast<double>(queue_.size()));
        }
        // Fail drops outside the lock: set_exception wakes waiters.
        for (detail::Pending &pending : formed.dropped)
            failDropped(pending);
        if (formed.batch.empty())
            continue;

        if (fault::fire("batcher.stall", options_.fault_tag)) {
            // A wedged backend from the queue's point of view:
            // requests keep their deadlines ticking while nothing
            // drains. Long enough to expire test deadlines, short
            // enough to keep the suite fast.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }

        // Execute outside the lock: submitters keep enqueuing while
        // the backend sweeps this batch.
        core::kernel::Batch inputs;
        inputs.reserve(formed.batch.size());
        for (const detail::Pending &pending : formed.batch)
            inputs.push_back(pending.input);
        const auto form_time = std::chrono::steady_clock::now();
        RunReport report = backend_->runBatch(inputs);

        // Record the batch BEFORE fulfilling the promises: a client
        // that just observed its future resolve must find its request
        // reflected in stats().
        const auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            completed_ += formed.batch.size();
            ++batches_;
            m_requests_.add(formed.batch.size());
            m_batches_.add();
            for (const detail::Pending &pending : formed.batch) {
                const double latency_us =
                    std::chrono::duration<double, std::micro>(
                        now - pending.enqueued)
                        .count();
                latencies_.record(latency_us);
                m_latency_.record(latency_us);
            }
            // Adapt the forming window to the observed queue depth:
            // a sweep that ran nearly empty means traffic is
            // sequential (an LSTM session stepping frame by frame)
            // and the wait bought nothing — halve it; a full sweep
            // means a burst is coalescing — double it back. The
            // window never leaves [min_delay, max_delay], so it can
            // only shorten queue waits relative to the fixed window.
            if (options_.adaptive_delay) {
                if (formed.batch.size() >= options_.max_batch)
                    forming_delay_ = std::min(options_.max_delay,
                                              forming_delay_ * 2);
                else if (formed.batch.size() <= 1)
                    forming_delay_ = std::max(options_.min_delay,
                                              forming_delay_ / 2);
            }
            m_forming_delay_.set(
                std::chrono::duration<double, std::micro>(
                    forming_delay_)
                    .count());
            // Fold the sweep's per-layer dispatch decisions into the
            // running stats (layer set is fixed per backend).
            if (layer_dispatch_.size() != report.dispatch.size())
                layer_dispatch_.assign(report.dispatch.size(), {});
            for (std::size_t i = 0; i < report.dispatch.size(); ++i) {
                const LayerDispatch &d = report.dispatch[i];
                LayerDispatchStats &s = layer_dispatch_[i];
                s.layer = d.layer;
                s.kernel = d.kernel;
                s.last_act_density = d.act_density;
                s.residency = d.residency;
                s.decoded_bytes = d.decoded_bytes;
                s.compressed_bytes = d.compressed_bytes;
                if (d.act_density >= 0.0) {
                    ++s.sweeps;
                    s.mean_act_density +=
                        (d.act_density - s.mean_act_density) /
                        static_cast<double>(s.sweeps);
                }
                // Decode cost of compressed-resident sweeps: mean per
                // sweep here, full distribution in the process
                // histogram.
                if (d.decode_us > 0.0) {
                    ++s.decode_sweeps;
                    s.mean_decode_us +=
                        (d.decode_us - s.mean_decode_us) /
                        static_cast<double>(s.decode_sweeps);
                    obs::processRegistry()
                        .histogram("eie_stream_decode_us")
                        .record(d.decode_us);
                }
                // Process-wide dispatch mix. Per-sweep (not
                // per-request) registry lookups: noise next to the
                // kernel sweep they describe.
                if (!d.kernel.empty())
                    obs::processRegistry()
                        .counter("eie_kernel_dispatch_total_"
                                 + d.kernel)
                        .add();
                if (d.act_density >= 0.0 && !d.layer.empty())
                    obs::processRegistry()
                        .gauge("eie_kernel_act_density_" + d.layer)
                        .set(d.act_density);
            }
        }
        // Traced requests drop their spans before the promises
        // resolve, so a client that sees its future complete finds
        // the full span set in the ring.
        bool any_traced = false;
        for (const detail::Pending &pending : formed.batch)
            if (pending.trace_id != 0) {
                any_traced = true;
                break;
            }
        if (any_traced) {
            obs::SpanRing &ring = obs::processTraceRing();
            const double form_us = obs::traceTimeUs(form_time);
            const double kernel_us = obs::traceTimeUs(now);
            const double reply_us = obs::traceNowUs();
            const std::string batch_arg =
                "batch=" + std::to_string(formed.batch.size());
            for (const detail::Pending &pending : formed.batch) {
                if (pending.trace_id == 0)
                    continue;
                const double enq_us =
                    obs::traceTimeUs(pending.enqueued);
                ring.record(pending.trace_id, "enqueue", "server",
                            enq_us, enq_us);
                ring.record(pending.trace_id, "batch_form",
                            "server", enq_us, form_us, batch_arg);
                ring.record(pending.trace_id, "kernel_run",
                            "server", form_us, kernel_us);
                ring.record(pending.trace_id, "reply", "server",
                            kernel_us, reply_us);
            }
        }
        for (std::size_t i = 0; i < formed.batch.size(); ++i)
            formed.batch[i].promise.set_value(
                std::move(report.outputs[i]));
    }

    // Defensive: the drain above completes everything that was queued
    // when stop() ran, so this is normally empty — but no future may
    // ever be abandoned, whatever the exit path.
    std::deque<detail::Pending> leftovers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        leftovers.swap(queue_);
    }
    for (detail::Pending &pending : leftovers)
        pending.promise.set_exception(
            std::make_exception_ptr(ServerStopped{}));
}

void
InferenceServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    // call_once makes concurrent stop() (e.g. an explicit stop racing
    // the destructor) safe: exactly one caller joins, the others
    // block until the drain has finished.
    std::call_once(join_once_, [this] {
        if (batcher_.joinable())
            batcher_.join();
    });
}

std::size_t
InferenceServer::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

obs::HistogramSnapshot
InferenceServer::latencyHistogramSnapshot() const
{
    // The histogram is internally atomic; no server lock needed.
    return latencies_.snapshot();
}

ServerStats
InferenceServer::stats() const
{
    ServerStats stats;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.requests = completed_;
        stats.batches = batches_;
        stats.dropped_deadline = dropped_deadline_;
        stats.requests_shed = requests_shed_;
        stats.max_queue_depth = max_queue_depth_;
        stats.forming_delay_us =
            std::chrono::duration<double, std::micro>(forming_delay_)
                .count();
        stats.layers = layer_dispatch_;
    }
    stats.mean_batch = stats.batches
        ? static_cast<double>(stats.requests) /
            static_cast<double>(stats.batches)
        : 0.0;
    stats.latency = latencies_.snapshot();
    const obs::LatencySummary summary = stats.latency.summary();
    stats.p50_latency_us = summary.p50;
    stats.p95_latency_us = summary.p95;
    stats.p99_latency_us = summary.p99;
    stats.p999_latency_us = summary.p999;
    stats.max_latency_us = summary.max;
    return stats;
}

} // namespace eie::engine
