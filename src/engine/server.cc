#include "engine/server.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace eie::engine {

std::vector<double>
openLoopArrivals(std::size_t count, double rate_per_sec, Rng &rng)
{
    std::vector<double> arrivals(count, 0.0);
    if (rate_per_sec <= 0.0)
        return arrivals;
    double clock_s = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        // Clamp the uniform draw away from 1.0: log(0) would make
        // this arrival (and every later one) infinitely late.
        const double u =
            std::min(rng.uniformReal(0.0, 1.0), 1.0 - 1e-12);
        clock_s += -std::log(1.0 - u) / rate_per_sec;
        arrivals[i] = clock_s;
    }
    return arrivals;
}

namespace {

/** Latency reservoir size: large enough for stable p99 estimates,
 *  small enough that stats() copies are trivial. */
constexpr std::size_t kLatencySampleCap = 16384;

/** Percentile of an unsorted sample (nearest-rank), 0 when empty. */
double
percentile(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sample.size() - 1));
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<std::ptrdiff_t>(rank),
                     sample.end());
    return sample[rank];
}

} // namespace

InferenceServer::InferenceServer(
    std::unique_ptr<ExecutionBackend> backend,
    const ServerOptions &options)
    : backend_(std::move(backend)), options_(options)
{
    fatal_if(!backend_, "server needs a backend");
    fatal_if(options_.max_batch == 0, "max_batch must be >= 1");
    batcher_ = std::thread([this] { batcherLoop(); });
}

InferenceServer::~InferenceServer()
{
    stop();
}

std::future<std::vector<std::int64_t>>
InferenceServer::submit(std::vector<std::int64_t> input_raw)
{
    fatal_if(input_raw.size() != backend_->inputSize(),
             "input length %zu != network input size %zu",
             input_raw.size(), backend_->inputSize());

    Pending pending;
    pending.input = std::move(input_raw);
    pending.enqueued = std::chrono::steady_clock::now();
    std::future<std::vector<std::int64_t>> future =
        pending.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        fatal_if(stopping_, "submit() on a stopped server");
        queue_.push_back(std::move(pending));
        max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    }
    work_cv_.notify_all();
    return future;
}

std::vector<std::int64_t>
InferenceServer::infer(std::vector<std::int64_t> input_raw)
{
    return submit(std::move(input_raw)).get();
}

void
InferenceServer::batcherLoop()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and drained: done.
                return;
            }

            // Deadline- and size-bounded forming: hold the oldest
            // request at most max_delay while the batch fills.
            const auto deadline =
                queue_.front().enqueued + options_.max_delay;
            work_cv_.wait_until(lock, deadline, [this] {
                return stopping_ ||
                    queue_.size() >= options_.max_batch;
            });

            const std::size_t take =
                std::min(queue_.size(), options_.max_batch);
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }

        // Execute outside the lock: submitters keep enqueuing while
        // the backend sweeps this batch.
        core::kernel::Batch inputs;
        inputs.reserve(batch.size());
        for (const Pending &pending : batch)
            inputs.push_back(pending.input);
        RunReport report = backend_->runBatch(inputs);

        // Record the batch BEFORE fulfilling the promises: a client
        // that just observed its future resolve must find its request
        // reflected in stats().
        const auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            completed_ += batch.size();
            ++batches_;
            for (const Pending &pending : batch)
                recordLatency(
                    std::chrono::duration<double, std::micro>(
                        now - pending.enqueued)
                        .count());
        }
        for (std::size_t i = 0; i < batch.size(); ++i)
            batch[i].promise.set_value(std::move(report.outputs[i]));
    }
}

void
InferenceServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    // call_once makes concurrent stop() (e.g. an explicit stop racing
    // the destructor) safe: exactly one caller joins, the others
    // block until the drain has finished.
    std::call_once(join_once_, [this] {
        if (batcher_.joinable())
            batcher_.join();
    });
}

void
InferenceServer::recordLatency(double latency_us)
{
    ++latency_seen_;
    if (latency_sample_.size() < kLatencySampleCap) {
        latency_sample_.push_back(latency_us);
        return;
    }
    // Algorithm R: keep each seen latency with probability cap/seen,
    // using a cheap xorshift stream (statistics, not cryptography).
    sample_rng_ ^= sample_rng_ << 13;
    sample_rng_ ^= sample_rng_ >> 7;
    sample_rng_ ^= sample_rng_ << 17;
    const std::uint64_t slot = sample_rng_ % latency_seen_;
    if (slot < kLatencySampleCap)
        latency_sample_[slot] = latency_us;
}

ServerStats
InferenceServer::stats() const
{
    std::vector<double> latencies;
    ServerStats stats;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.requests = completed_;
        stats.batches = batches_;
        stats.max_queue_depth = max_queue_depth_;
        latencies = latency_sample_;
    }
    stats.mean_batch = stats.batches
        ? static_cast<double>(stats.requests) /
            static_cast<double>(stats.batches)
        : 0.0;
    stats.p50_latency_us = percentile(latencies, 0.5);
    stats.p99_latency_us = percentile(latencies, 0.99);
    stats.max_latency_us =
        latencies.empty() ? 0.0
                          : *std::max_element(latencies.begin(),
                                              latencies.end());
    return stats;
}

} // namespace eie::engine
