#include "engine/server.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/faultpoint.hh"
#include "common/logging.hh"

namespace eie::engine {

const char *
DeadlineExpired::what() const noexcept
{
    return "request deadline expired before execution";
}

const char *
ServerStopped::what() const noexcept
{
    return "request submitted to a stopped InferenceServer";
}

const char *
ServerOverloaded::what() const noexcept
{
    return "request shed: server queue is full";
}

std::vector<double>
openLoopArrivals(std::size_t count, double rate_per_sec, Rng &rng)
{
    std::vector<double> arrivals(count, 0.0);
    if (rate_per_sec <= 0.0)
        return arrivals;
    double clock_s = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        // Clamp the uniform draw away from 1.0: log(0) would make
        // this arrival (and every later one) infinitely late.
        const double u =
            std::min(rng.uniformReal(0.0, 1.0), 1.0 - 1e-12);
        clock_s += -std::log(1.0 - u) / rate_per_sec;
        arrivals[i] = clock_s;
    }
    return arrivals;
}

namespace detail {

FormedBatch
formBatch(std::deque<Pending> &queue, std::size_t max_batch,
          std::chrono::steady_clock::time_point now)
{
    FormedBatch formed;

    // Expired requests never reach the backend, drained or not.
    std::deque<Pending> live;
    for (Pending &pending : queue) {
        if (pending.deadline <= now)
            formed.dropped.push_back(std::move(pending));
        else
            live.push_back(std::move(pending));
    }
    queue.swap(live);
    if (queue.empty())
        return formed;

    // Stable selection by descending priority: order[] is arrival
    // order, so equal priorities keep FIFO semantics.
    std::vector<std::size_t> order(queue.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&queue](std::size_t a, std::size_t b) {
                         return queue[a].priority > queue[b].priority;
                     });
    const std::size_t take = std::min(queue.size(), max_batch);
    std::vector<bool> taken(queue.size(), false);
    formed.batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        taken[order[i]] = true;
        formed.batch.push_back(std::move(queue[order[i]]));
    }
    std::deque<Pending> rest;
    for (std::size_t i = 0; i < queue.size(); ++i)
        if (!taken[i])
            rest.push_back(std::move(queue[i]));
    queue.swap(rest);
    return formed;
}

} // namespace detail

/** Latency reservoir size: large enough for stable p99 estimates,
 *  small enough that stats() copies are trivial. */
static constexpr std::size_t kLatencySampleCap = 16384;

void
LatencyReservoir::record(double latency_us)
{
    ++seen_;
    if (sample_.size() < kLatencySampleCap) {
        sample_.push_back(latency_us);
        return;
    }
    // Algorithm R: keep each seen latency with probability cap/seen,
    // using a cheap xorshift stream (statistics, not cryptography).
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    const std::uint64_t slot = rng_ % seen_;
    if (slot < kLatencySampleCap)
        sample_[slot] = latency_us;
}

double
percentileOf(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sample.size() - 1));
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<std::ptrdiff_t>(rank),
                     sample.end());
    return sample[rank];
}

namespace {

/** Fail a request's future with the deadline-drop error. */
void
failDropped(detail::Pending &pending)
{
    pending.promise.set_exception(
        std::make_exception_ptr(DeadlineExpired{}));
}

} // namespace

InferenceServer::InferenceServer(
    std::unique_ptr<ExecutionBackend> backend,
    const ServerOptions &options)
    : backend_(std::move(backend)), options_(options)
{
    fatal_if(!backend_, "server needs a backend");
    fatal_if(options_.max_batch == 0, "max_batch must be >= 1");
    // The adaptive window lives in [min_delay, max_delay]; it starts
    // at max_delay (the fixed-window behavior) and only shrinks once
    // sweeps are observed running nearly empty.
    options_.min_delay = std::min(options_.min_delay,
                                  options_.max_delay);
    forming_delay_ = options_.max_delay;
    batcher_ = std::thread([this] { batcherLoop(); });
}

InferenceServer::~InferenceServer()
{
    stop();
}

std::future<std::vector<std::int64_t>>
InferenceServer::submit(std::vector<std::int64_t> input_raw,
                        const SubmitOptions &options)
{
    fatal_if(input_raw.size() != backend_->inputSize(),
             "input length %zu != network input size %zu",
             input_raw.size(), backend_->inputSize());

    detail::Pending pending;
    pending.input = std::move(input_raw);
    pending.enqueued = std::chrono::steady_clock::now();
    if (options.deadline.count() > 0)
        pending.deadline = pending.enqueued + options.deadline;
    pending.priority = options.priority;
    std::future<std::vector<std::int64_t>> future =
        pending.promise.get_future();

    if (fault::fire("shard.submit_fail", options_.fault_tag)) {
        pending.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("injected fault: shard.submit_fail")));
        return future;
    }

    bool shed_newcomer = false;
    detail::Pending evicted;
    bool have_evicted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // A cluster tearing down races its clients' last submits;
            // that is a per-request failure, not a process error.
            pending.promise.set_exception(
                std::make_exception_ptr(ServerStopped{}));
            return future;
        }
        if (options_.max_queue > 0 &&
            queue_.size() >= options_.max_queue) {
            if (options_.shed_policy ==
                ShedPolicy::EvictLowestPriority) {
                // Oldest request at the lowest priority level loses
                // its slot — but only to a strictly higher-priority
                // newcomer, so equal-priority traffic stays FIFO.
                auto victim = queue_.begin();
                for (auto it = queue_.begin(); it != queue_.end();
                     ++it)
                    if (it->priority < victim->priority)
                        victim = it;
                if (victim->priority < pending.priority) {
                    evicted = std::move(*victim);
                    queue_.erase(victim);
                    have_evicted = true;
                } else {
                    shed_newcomer = true;
                }
            } else {
                shed_newcomer = true;
            }
        }
        if (!shed_newcomer && options_.max_queue > 0 &&
            options_.shed_infeasible_deadlines &&
            pending.deadline !=
                std::chrono::steady_clock::time_point::max()) {
            // Every max_batch requests ahead cost up to one forming
            // window; a deadline inside that estimate would only be
            // admitted to expire in the queue — shed it now instead
            // so the client learns "overloaded", not "too late".
            const auto sweeps = queue_.size() / options_.max_batch + 1;
            const auto earliest_done = pending.enqueued +
                sweeps * options_.max_delay;
            if (pending.deadline < earliest_done)
                shed_newcomer = true;
        }
        requests_shed_ += (shed_newcomer ? 1 : 0) +
            (have_evicted ? 1 : 0);
        if (!shed_newcomer) {
            queue_.push_back(std::move(pending));
            max_queue_depth_ =
                std::max(max_queue_depth_, queue_.size());
        }
    }
    // Fail shed requests outside the lock: set_exception wakes waiters.
    if (shed_newcomer)
        pending.promise.set_exception(
            std::make_exception_ptr(ServerOverloaded{}));
    if (have_evicted)
        evicted.promise.set_exception(
            std::make_exception_ptr(ServerOverloaded{}));
    if (!shed_newcomer)
        work_cv_.notify_all();
    return future;
}

std::vector<std::int64_t>
InferenceServer::infer(std::vector<std::int64_t> input_raw)
{
    return submit(std::move(input_raw)).get();
}

std::chrono::steady_clock::time_point
InferenceServer::nextWakeup() const
{
    auto wake = queue_.front().enqueued + forming_delay_;
    for (const detail::Pending &pending : queue_)
        wake = std::min(wake, pending.deadline);
    return wake;
}

void
InferenceServer::batcherLoop()
{
    for (;;) {
        detail::FormedBatch formed;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and drained: done.
                break;
            }

            // Deadline- and size-bounded forming: hold the oldest
            // request until the batch fills or its forming deadline
            // (max_delay) passes. A queued request's own deadline
            // wakes the batcher early so it is dropped promptly —
            // but a drop must only drop, never cut the forming wait
            // short for the still-live requests.
            for (;;) {
                const auto now = std::chrono::steady_clock::now();
                std::deque<detail::Pending> live;
                for (detail::Pending &pending : queue_) {
                    if (pending.deadline <= now)
                        formed.dropped.push_back(std::move(pending));
                    else
                        live.push_back(std::move(pending));
                }
                queue_.swap(live);
                if (stopping_ || queue_.empty() ||
                    queue_.size() >= options_.max_batch)
                    break;
                if (queue_.front().enqueued + forming_delay_ <= now)
                    break;
                // Re-arm when a newly submitted request carries an
                // earlier deadline than this wait was computed for:
                // submit() notifies, and nextWakeup() moving earlier
                // pops the wait so the next pass drops on time.
                const auto wake = nextWakeup();
                work_cv_.wait_until(lock, wake, [this, wake] {
                    return stopping_ ||
                        queue_.size() >= options_.max_batch ||
                        nextWakeup() < wake;
                });
            }

            detail::FormedBatch selected = detail::formBatch(
                queue_, options_.max_batch,
                std::chrono::steady_clock::now());
            formed.batch = std::move(selected.batch);
            for (detail::Pending &pending : selected.dropped)
                formed.dropped.push_back(std::move(pending));
            dropped_deadline_ += formed.dropped.size();
        }
        // Fail drops outside the lock: set_exception wakes waiters.
        for (detail::Pending &pending : formed.dropped)
            failDropped(pending);
        if (formed.batch.empty())
            continue;

        if (fault::fire("batcher.stall", options_.fault_tag)) {
            // A wedged backend from the queue's point of view:
            // requests keep their deadlines ticking while nothing
            // drains. Long enough to expire test deadlines, short
            // enough to keep the suite fast.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }

        // Execute outside the lock: submitters keep enqueuing while
        // the backend sweeps this batch.
        core::kernel::Batch inputs;
        inputs.reserve(formed.batch.size());
        for (const detail::Pending &pending : formed.batch)
            inputs.push_back(pending.input);
        RunReport report = backend_->runBatch(inputs);

        // Record the batch BEFORE fulfilling the promises: a client
        // that just observed its future resolve must find its request
        // reflected in stats().
        const auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            completed_ += formed.batch.size();
            ++batches_;
            for (const detail::Pending &pending : formed.batch)
                latencies_.record(
                    std::chrono::duration<double, std::micro>(
                        now - pending.enqueued)
                        .count());
            // Adapt the forming window to the observed queue depth:
            // a sweep that ran nearly empty means traffic is
            // sequential (an LSTM session stepping frame by frame)
            // and the wait bought nothing — halve it; a full sweep
            // means a burst is coalescing — double it back. The
            // window never leaves [min_delay, max_delay], so it can
            // only shorten queue waits relative to the fixed window.
            if (options_.adaptive_delay) {
                if (formed.batch.size() >= options_.max_batch)
                    forming_delay_ = std::min(options_.max_delay,
                                              forming_delay_ * 2);
                else if (formed.batch.size() <= 1)
                    forming_delay_ = std::max(options_.min_delay,
                                              forming_delay_ / 2);
            }
            // Fold the sweep's per-layer dispatch decisions into the
            // running stats (layer set is fixed per backend).
            if (layer_dispatch_.size() != report.dispatch.size())
                layer_dispatch_.assign(report.dispatch.size(), {});
            for (std::size_t i = 0; i < report.dispatch.size(); ++i) {
                const LayerDispatch &d = report.dispatch[i];
                LayerDispatchStats &s = layer_dispatch_[i];
                s.layer = d.layer;
                s.kernel = d.kernel;
                s.last_act_density = d.act_density;
                if (d.act_density >= 0.0) {
                    ++s.sweeps;
                    s.mean_act_density +=
                        (d.act_density - s.mean_act_density) /
                        static_cast<double>(s.sweeps);
                }
            }
        }
        for (std::size_t i = 0; i < formed.batch.size(); ++i)
            formed.batch[i].promise.set_value(
                std::move(report.outputs[i]));
    }

    // Defensive: the drain above completes everything that was queued
    // when stop() ran, so this is normally empty — but no future may
    // ever be abandoned, whatever the exit path.
    std::deque<detail::Pending> leftovers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        leftovers.swap(queue_);
    }
    for (detail::Pending &pending : leftovers)
        pending.promise.set_exception(
            std::make_exception_ptr(ServerStopped{}));
}

void
InferenceServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    // call_once makes concurrent stop() (e.g. an explicit stop racing
    // the destructor) safe: exactly one caller joins, the others
    // block until the drain has finished.
    std::call_once(join_once_, [this] {
        if (batcher_.joinable())
            batcher_.join();
    });
}

std::size_t
InferenceServer::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::vector<double>
InferenceServer::latencySampleSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latencies_.sample();
}

ServerStats
InferenceServer::stats() const
{
    std::vector<double> latencies;
    ServerStats stats;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.requests = completed_;
        stats.batches = batches_;
        stats.dropped_deadline = dropped_deadline_;
        stats.requests_shed = requests_shed_;
        stats.max_queue_depth = max_queue_depth_;
        stats.forming_delay_us =
            std::chrono::duration<double, std::micro>(forming_delay_)
                .count();
        stats.layers = layer_dispatch_;
        latencies = latencies_.sample();
    }
    stats.mean_batch = stats.batches
        ? static_cast<double>(stats.requests) /
            static_cast<double>(stats.batches)
        : 0.0;
    stats.p50_latency_us = percentileOf(latencies, 0.5);
    stats.p99_latency_us = percentileOf(latencies, 0.99);
    stats.max_latency_us =
        latencies.empty() ? 0.0
                          : *std::max_element(latencies.begin(),
                                              latencies.end());
    return stats;
}

} // namespace eie::engine
