/**
 * @file
 * The unified execution-path abstraction.
 *
 * The engine executes compiled layer stacks through three bit-exact
 * paths — the scalar interpreter oracle, the compiled host kernel and
 * the cycle-accurate simulator. Historically each was a bespoke entry
 * point (FunctionalModel::run, kernel::runBatch, Accelerator) that
 * every tool and bench wired up by hand; ExecutionBackend puts one
 * interface in front of all three, selected by name, so any caller
 * can swap paths with a string. All backends return the same
 * RunReport; the timed backend additionally fills per-frame,
 * per-layer RunStats.
 */

#ifndef EIE_ENGINE_BACKEND_HH
#define EIE_ENGINE_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/kernel/executor.hh"
#include "core/plan.hh"
#include "core/run_stats.hh"

namespace eie::engine {

/**
 * One layer's kernel dispatch decision for a runBatch call: which
 * variant actually executed and the measured (sampled) activation
 * density that drove density-aware Auto resolution. Filled by the
 * compiled backend; surfaced through ServerStats / statsJson /
 * Client::stats() so the decision is observable end to end.
 */
struct LayerDispatch
{
    std::string layer;         ///< compiled layer name
    std::string kernel;        ///< executed variant registry name
    double act_density = -1.0; ///< sampled nonzero input fraction

    /** The layer's resident stream form ("decoded" or "compressed"). */
    std::string residency;
    std::uint64_t decoded_bytes = 0;    ///< resident decoded stream bytes
    std::uint64_t compressed_bytes = 0; ///< resident compressed bytes
    /** Decode CPU time this call spent expanding compressed-resident
     *  streams into scratch, microseconds (0 on decoded residency). */
    double decode_us = 0.0;
};

/** What one backend execution produced. */
struct RunReport
{
    /** One output vector per input frame (raw fixed point). */
    core::kernel::Batch outputs;

    /**
     * stats[frame][layer]: cycle-level statistics, filled only by
     * timed backends (ExecutionBackend::timed()); empty otherwise.
     */
    std::vector<std::vector<core::RunStats>> stats;

    /** Per-layer kernel dispatch decisions, filled by the compiled
     *  backend (empty for scalar/sim). */
    std::vector<LayerDispatch> dispatch;

    /** Total simulated cycles over all frames and layers (0 untimed). */
    std::uint64_t totalCycles() const;

    /** Total simulated time over all frames and layers, microseconds. */
    double totalTimeUs() const;
};

/**
 * One execution path over a fixed stack of planned layers.
 *
 * Implementations are immutable after construction and safe to call
 * from several threads; the compiled backend serializes concurrent
 * runBatch() calls internally (they share one worker pool).
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    ExecutionBackend(const ExecutionBackend &) = delete;
    ExecutionBackend &operator=(const ExecutionBackend &) = delete;

    /** The backend's registry name ("scalar", "compiled", "sim"). */
    const std::string &name() const { return name_; }

    /** Whether runBatch() fills RunReport::stats. */
    virtual bool timed() const { return false; }

    std::size_t inputSize() const { return input_size_; }
    std::size_t outputSize() const { return output_size_; }
    std::size_t layerCount() const { return layer_count_; }

    /**
     * Run every frame of @p inputs through the whole layer stack.
     * Outputs are bit-identical across all backends for the same
     * inputs.
     */
    virtual RunReport runBatch(const core::kernel::Batch &inputs) const = 0;

    /** Single-frame convenience wrapper around runBatch(). */
    RunReport run(const std::vector<std::int64_t> &input_raw) const;

  protected:
    /** Validates the stack (non-empty, chained sizes, non-null). */
    ExecutionBackend(std::string name,
                     const std::vector<const core::LayerPlan *> &plans);

  private:
    std::string name_;
    std::size_t input_size_ = 0;
    std::size_t output_size_ = 0;
    std::size_t layer_count_ = 0;
};

/** The registered backend names, factory order. */
const std::vector<std::string> &backendNames();

/** Fatal — listing the registered names — unless @p name is one of
 *  them. For CLI flag validation at parse time; makeBackend calls it
 *  too, so both paths emit one error message. */
void validateBackendName(const std::string &name);

/**
 * Build a backend by name over @p plans (the layer stack in execution
 * order; sizes must chain).
 *
 *  - "scalar"   — FunctionalModel interpreter, the bit-exactness
 *                 oracle. Keeps the plan pointers: the plans must
 *                 outlive the backend.
 *  - "compiled" — pre-decoded kernel path with a persistent
 *                 PE-parallel worker pool of @p threads workers and
 *                 the requested kernel variant. Compiles at
 *                 construction; does not retain the plans.
 *  - "sim"      — cycle-accurate simulator, timing stats in the
 *                 report. Compiles (with the simulator stream) at
 *                 construction; does not retain the plans.
 *
 * @p kernel selects the compiled backend's inner loop (see
 * core/kernel/variant.hh) and @p residency its resident stream form
 * (decoded arrays, compressed nibble+Huffman streams, or per-layer
 * auto selection; see core/kernel/compiled_layer.hh); the other
 * backends ignore both.
 *
 * Fatal on an unknown name, an empty stack, or a non-chaining stack.
 */
std::unique_ptr<ExecutionBackend>
makeBackend(const std::string &name, const core::EieConfig &config,
            const std::vector<const core::LayerPlan *> &plans,
            unsigned threads = 1,
            core::kernel::KernelVariant kernel =
                core::kernel::KernelVariant::Auto,
            core::kernel::Residency residency =
                core::kernel::Residency::Decoded);

} // namespace eie::engine

#endif // EIE_ENGINE_BACKEND_HH
