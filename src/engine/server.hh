/**
 * @file
 * Async serving front end over an ExecutionBackend.
 *
 * EIE's pitch is latency-bound FC/LSTM serving where classic batching
 * hurts latency — yet a deployed engine must absorb many concurrent
 * single-vector requests. InferenceServer bridges the two with a
 * dynamic micro-batcher: submissions enqueue individually and a
 * batcher thread coalesces whatever is waiting into one backend
 * batch sweep, bounded by a maximum batch size and a forming
 * deadline. Under light load a request rides alone (deadline-bounded
 * added latency); under heavy load batches fill instantly and
 * throughput approaches the backend's batched peak.
 *
 * The forming window is adaptive by default: when sweeps execute
 * nearly empty (sequential/streaming traffic — an LSTM session
 * stepping one frame at a time) the window halves toward min_delay,
 * so lone requests stop paying the full max_delay wait; when sweeps
 * fill to max_batch it doubles back toward max_delay so bursts keep
 * coalescing. The window never exceeds the configured max_delay, so
 * adaptivity can only shorten queue waits — a deadline feasible
 * under the fixed window stays feasible under the adaptive one.
 *
 * Requests carry an optional priority and deadline: when the queue
 * holds more than one batch of work the batcher pops higher-priority
 * requests first (FIFO within a priority level), and a request whose
 * deadline passes before it reaches the backend is dropped — its
 * future fails with a clear error and ServerStats counts the drop.
 *
 * Thread safety: submit()/infer() may be called from any number of
 * threads. Responses are delivered through per-request futures, so
 * request/response pairing is structural; same-priority requests from
 * one thread execute in submission order. Every future obtained from
 * submit() is guaranteed to complete — with the output, or with an
 * exception (deadline drop, submit on a stopped/stopping server) —
 * even when the server is destroyed with a full queue mid-burst.
 */

#ifndef EIE_ENGINE_SERVER_HH
#define EIE_ENGINE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "engine/backend.hh"
#include "obs/metrics.hh"

namespace eie::engine {

/**
 * @name Failure modes delivered through request futures.
 * Their what() strings are static literals on purpose: the exception
 * object crosses threads (set on the promise side, rethrown and read
 * on the future side), and a refcounted message string would make
 * the two sides share mutable state.
 */
///@{

/** The request's deadline expired while it was still queued. */
class DeadlineExpired : public std::exception
{
  public:
    const char *what() const noexcept override;
};

/** The request reached a server that had already stopped. */
class ServerStopped : public std::exception
{
  public:
    const char *what() const noexcept override;
};

/** The request was shed by admission control (queue full or deadline
 *  infeasible). Clients should treat this as Unavailable: the server
 *  is healthy but saturated, and an idempotent request may be retried
 *  after backoff. */
class ServerOverloaded : public std::exception
{
  public:
    const char *what() const noexcept override;
};

///@}

/**
 * Exponential (Poisson-process) open-loop arrival offsets in seconds
 * from a common start, for synthetic serving traffic: the schedule
 * never waits for responses. A non-positive @p rate_per_sec yields
 * all-zero offsets (back-to-back submission).
 */
std::vector<double> openLoopArrivals(std::size_t count,
                                     double rate_per_sec, Rng &rng);

/**
 * Bounded uniform sample of a latency stream (algorithm R): a
 * long-lived recorder keeps O(1) memory and snapshots copy a
 * fixed-size sample. Not thread-safe — callers hold their own lock.
 * The serving path now records into obs::Histogram (mergeable,
 * lock-free); this stays for consumers that need exact raw samples.
 */
class LatencyReservoir
{
  public:
    void record(double latency_us);

    /** The current sample (bounded; uniform over everything seen). */
    const std::vector<double> &sample() const { return sample_; }

  private:
    std::vector<double> sample_;
    std::uint64_t seen_ = 0;
    std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;
};

/**
 * Nearest-rank percentile of an unsorted sample: 0 when empty, the
 * minimum for p <= 0, the maximum for p >= 1. Rank selection is
 * obs::nearestRankIndex — the same code the histogram quantile path
 * uses — so the exact and bucketed estimators cannot drift.
 */
double percentileOf(std::vector<double> sample, double p);

/** What admission control sheds when the queue is at max_queue. */
enum class ShedPolicy {
    /** Always reject the newly arriving request. */
    RejectNew,
    /** Evict the lowest-priority queued request when the newcomer
     *  outranks it (oldest such request goes first); otherwise shed
     *  the newcomer. Keeps high-priority traffic admitted under
     *  sustained overload. */
    EvictLowestPriority,
};

/** Micro-batching policy of an InferenceServer. */
struct ServerOptions
{
    /** Largest batch one backend sweep may coalesce. */
    std::size_t max_batch = 16;

    /** How long the batcher may hold the oldest queued request while
     *  waiting for the batch to fill (the adaptive window's upper
     *  bound). */
    std::chrono::microseconds max_delay{200};

    /** Adapt the forming window to the observed queue depth: halve
     *  toward min_delay after a sweep that executed <= 1 request,
     *  double back toward max_delay after a full sweep. Disable for
     *  a fixed max_delay window. */
    bool adaptive_delay = true;

    /** Lower bound of the adaptive forming window (clamped to
     *  max_delay when larger). */
    std::chrono::microseconds min_delay{20};

    /** Admission control: maximum queued (unformed) requests before
     *  new arrivals are shed with ServerOverloaded. 0 (the default)
     *  leaves the queue unbounded — the pre-shedding behavior. */
    std::size_t max_queue = 0;

    /** Which request loses when the queue is full. */
    ShedPolicy shed_policy = ShedPolicy::RejectNew;

    /** When max_queue > 0, also shed a request at admission if its
     *  deadline cannot plausibly be met given the work already queued
     *  ahead of it (queue_depth / max_batch forming sweeps, each up
     *  to max_delay). Off by default. */
    bool shed_infeasible_deadlines = false;

    /** Opaque label handed to fault::fire() at this server's fault
     *  points, so tests can target one shard of a cluster. */
    std::string fault_tag;
};

/** Per-request scheduling knobs for InferenceServer::submit(). */
struct SubmitOptions
{
    /** Higher-priority requests pop first when the queue holds more
     *  than one batch of work (FIFO within a level). */
    int priority = 0;

    /** Time budget from submission; a request still queued when it
     *  expires is dropped (future fails, drop counted). Zero (the
     *  default) means no deadline. */
    std::chrono::microseconds deadline{0};

    /** Distributed trace id (obs::nextTraceId()); 0 — the default —
     *  means untraced and records nothing. Traced requests drop
     *  enqueue/batch_form/kernel_run/reply spans into the process
     *  trace ring as they complete. */
    std::uint64_t trace_id = 0;
};

/**
 * Per-layer kernel dispatch statistics of a serving backend: which
 * variant the last sweep executed and the measured activation
 * density, aggregated across sweeps. Only filled when the backend
 * reports dispatch decisions (the compiled backend).
 */
struct LayerDispatchStats
{
    std::string layer;              ///< compiled layer name
    std::string kernel;             ///< last executed variant
    double last_act_density = -1.0; ///< last sweep's sampled density
    double mean_act_density = 0.0;  ///< mean over measured sweeps
    std::uint64_t sweeps = 0;       ///< sweeps with a measured density

    /** Resident stream form ("decoded"/"compressed"; empty when the
     *  backend does not report it). */
    std::string residency;
    std::uint64_t decoded_bytes = 0;    ///< resident decoded bytes
    std::uint64_t compressed_bytes = 0; ///< resident compressed bytes
    /** Mean per-sweep decode CPU time, microseconds (0 on decoded
     *  residency). */
    double mean_decode_us = 0.0;
    std::uint64_t decode_sweeps = 0; ///< sweeps with decode time
};

/** Aggregate serving statistics since construction. */
struct ServerStats
{
    std::uint64_t requests = 0;   ///< completed requests
    std::uint64_t batches = 0;    ///< backend sweeps executed
    double mean_batch = 0.0;      ///< requests / batches
    std::size_t max_queue_depth = 0;

    /** Requests dropped because their deadline expired in the queue. */
    std::uint64_t dropped_deadline = 0;

    /** Requests shed by admission control (queue cap / infeasible
     *  deadline), including queued requests evicted by a
     *  higher-priority newcomer. */
    std::uint64_t requests_shed = 0;

    /** Request latency (submit to response), microseconds, derived
     *  from the server's log-scale latency histogram — the same
     *  obs::HistogramSnapshot::quantile code every other telemetry
     *  surface uses. */
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;
    double max_latency_us = 0.0;

    /** The raw mergeable histogram behind the percentiles, so
     *  aggregators (ClusterEngine, client transports) combine
     *  distributions instead of averaging quantiles. */
    obs::HistogramSnapshot latency;

    /** Current adaptive forming window (== max_delay when the
     *  adaptive batcher is off or has not adapted yet). */
    double forming_delay_us = 0.0;

    /** Per-layer kernel dispatch decisions (empty for backends that
     *  do not report them). */
    std::vector<LayerDispatchStats> layers;
};

namespace detail {

/** One queued request (exposed for the batch-forming policy tests). */
struct Pending
{
    std::vector<std::int64_t> input;
    std::promise<std::vector<std::int64_t>> promise;
    std::chrono::steady_clock::time_point enqueued;
    /** Absolute drop time; time_point::max() = no deadline. */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    int priority = 0;
    std::uint64_t trace_id = 0;
};

/** What one batch-forming step popped from the queue. */
struct FormedBatch
{
    std::vector<Pending> batch;   ///< to execute, selection order
    std::vector<Pending> dropped; ///< deadline expired before @p now
};

/**
 * The micro-batcher's pop policy, as a pure queue transformation so
 * it is unit-testable without timing races: remove every request
 * whose deadline lies at or before @p now (returned in `dropped`),
 * then select up to @p max_batch of the remainder by priority
 * (descending), FIFO within a priority level. The queue keeps the
 * unselected requests in arrival order.
 */
FormedBatch formBatch(std::deque<Pending> &queue, std::size_t max_batch,
                      std::chrono::steady_clock::time_point now);

} // namespace detail

/** Async request queue + dynamic micro-batcher over one backend. */
class InferenceServer
{
  public:
    /**
     * Take ownership of @p backend and start the batcher thread.
     * Any backend works; "compiled" (optionally with a worker pool)
     * is the intended serving path.
     */
    explicit InferenceServer(std::unique_ptr<ExecutionBackend> backend,
                             const ServerOptions &options = {});

    /** Stops accepting, completes queued requests, joins. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Enqueue one input vector; the future resolves to the network's
     * raw output once a batch containing the request completes, or
     * fails with DeadlineExpired / ServerStopped if the request's
     * deadline expires in the queue or the server is stopped. Fatal
     * if the input length does not match the network.
     */
    std::future<std::vector<std::int64_t>>
    submit(std::vector<std::int64_t> input_raw,
           const SubmitOptions &options = {});

    /** Blocking convenience wrapper: submit and wait. */
    std::vector<std::int64_t>
    infer(std::vector<std::int64_t> input_raw);

    /** The backend being served. */
    const ExecutionBackend &backend() const { return *backend_; }

    /** Stop accepting new requests, drain the queue, join. Idempotent.
     *  Every already-submitted future completes (drained requests with
     *  their output, expired ones with the deadline error). */
    void stop();

    /** Requests currently queued (not yet handed to the backend). */
    std::size_t queueDepth() const;

    /** Snapshot of the aggregate statistics. */
    ServerStats stats() const;

    /** The raw latency histogram behind the stats() percentiles, for
     *  callers that merge distributions across servers
     *  (ClusterEngine, the client transports). */
    obs::HistogramSnapshot latencyHistogramSnapshot() const;

  private:
    void batcherLoop();

    /** Earliest instant the batcher must wake while forming: the
     *  oldest request's forming deadline or the earliest request
     *  deadline, whichever comes first. Caller holds mutex_. */
    std::chrono::steady_clock::time_point nextWakeup() const;

    std::unique_ptr<ExecutionBackend> backend_;
    ServerOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::deque<detail::Pending> queue_;
    bool stopping_ = false;
    std::once_flag join_once_;

    /** The adaptive forming window, within [min_delay, max_delay]
     *  (guarded by mutex_). */
    std::chrono::microseconds forming_delay_;

    // Statistics (guarded by mutex_).
    std::vector<LayerDispatchStats> layer_dispatch_;
    std::uint64_t completed_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t dropped_deadline_ = 0;
    std::uint64_t requests_shed_ = 0;
    std::size_t max_queue_depth_ = 0;

    /** Per-server latency distribution (internally atomic). */
    obs::Histogram latencies_;

    /** Process-wide registry handles, resolved once at construction
     *  so the hot path never takes the registry lock. These
     *  aggregate across every server in the process (all cluster
     *  shards) — per-server numbers stay in the members above. */
    obs::Counter &m_requests_;
    obs::Counter &m_batches_;
    obs::Counter &m_dropped_deadline_;
    obs::Counter &m_shed_;
    obs::Histogram &m_latency_;
    obs::Gauge &m_queue_depth_;
    obs::Gauge &m_forming_delay_;

    std::thread batcher_;
};

} // namespace eie::engine

#endif // EIE_ENGINE_SERVER_HH
