/**
 * @file
 * Async serving front end over an ExecutionBackend.
 *
 * EIE's pitch is latency-bound FC/LSTM serving where classic batching
 * hurts latency — yet a deployed engine must absorb many concurrent
 * single-vector requests. InferenceServer bridges the two with a
 * dynamic micro-batcher: submissions enqueue individually and a
 * batcher thread coalesces whatever is waiting into one backend
 * batch sweep, bounded by a maximum batch size and a forming
 * deadline. Under light load a request rides alone (deadline-bounded
 * added latency); under heavy load batches fill instantly and
 * throughput approaches the backend's batched peak.
 *
 * Thread safety: submit()/infer() may be called from any number of
 * threads. Responses are delivered through per-request futures, so
 * request/response pairing is structural; requests from one thread
 * are executed in submission order (the queue is FIFO).
 */

#ifndef EIE_ENGINE_SERVER_HH
#define EIE_ENGINE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "engine/backend.hh"

namespace eie::engine {

/**
 * Exponential (Poisson-process) open-loop arrival offsets in seconds
 * from a common start, for synthetic serving traffic: the schedule
 * never waits for responses. A non-positive @p rate_per_sec yields
 * all-zero offsets (back-to-back submission).
 */
std::vector<double> openLoopArrivals(std::size_t count,
                                     double rate_per_sec, Rng &rng);

/** Micro-batching policy of an InferenceServer. */
struct ServerOptions
{
    /** Largest batch one backend sweep may coalesce. */
    std::size_t max_batch = 16;

    /** How long the batcher may hold the oldest queued request while
     *  waiting for the batch to fill. */
    std::chrono::microseconds max_delay{200};
};

/** Aggregate serving statistics since construction. */
struct ServerStats
{
    std::uint64_t requests = 0;   ///< completed requests
    std::uint64_t batches = 0;    ///< backend sweeps executed
    double mean_batch = 0.0;      ///< requests / batches
    std::size_t max_queue_depth = 0;

    /** Request latency (submit to response), microseconds, estimated
     *  from a bounded uniform sample of all completed requests. */
    double p50_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double max_latency_us = 0.0;
};

/** Async request queue + dynamic micro-batcher over one backend. */
class InferenceServer
{
  public:
    /**
     * Take ownership of @p backend and start the batcher thread.
     * Any backend works; "compiled" (optionally with a worker pool)
     * is the intended serving path.
     */
    explicit InferenceServer(std::unique_ptr<ExecutionBackend> backend,
                             const ServerOptions &options = {});

    /** Stops accepting, completes queued requests, joins. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Enqueue one input vector; the future resolves to the network's
     * raw output once a batch containing the request completes.
     * Fatal if the input length does not match the network or the
     * server is stopped.
     */
    std::future<std::vector<std::int64_t>>
    submit(std::vector<std::int64_t> input_raw);

    /** Blocking convenience wrapper: submit and wait. */
    std::vector<std::int64_t>
    infer(std::vector<std::int64_t> input_raw);

    /** The backend being served. */
    const ExecutionBackend &backend() const { return *backend_; }

    /** Stop accepting new requests, drain the queue, join. Idempotent. */
    void stop();

    /** Snapshot of the aggregate statistics. */
    ServerStats stats() const;

  private:
    struct Pending
    {
        std::vector<std::int64_t> input;
        std::promise<std::vector<std::int64_t>> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void batcherLoop();
    void recordLatency(double latency_us); ///< caller holds mutex_

    std::unique_ptr<ExecutionBackend> backend_;
    ServerOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    std::once_flag join_once_;

    // Statistics (guarded by mutex_). Latencies are a bounded
    // uniform reservoir (algorithm R) so a long-lived server keeps
    // O(1) memory and stats() copies a fixed-size sample.
    std::uint64_t completed_ = 0;
    std::uint64_t batches_ = 0;
    std::size_t max_queue_depth_ = 0;
    std::vector<double> latency_sample_;
    std::uint64_t latency_seen_ = 0;
    std::uint64_t sample_rng_ = 0x9e3779b97f4a7c15ull;

    std::thread batcher_;
};

} // namespace eie::engine

#endif // EIE_ENGINE_SERVER_HH
