/**
 * @file
 * Streaming LSTM session state over any M×V execution path.
 *
 * EIE's RNN workloads (NT-LSTM, Table III) pack all four gate
 * matrices into one (4H) x (X + H + 1) M×V applied to [x; h; 1]; the
 * gate non-linearities and the state update run on the host
 * (nn::LstmCell::applyGates) — exactly the hardware/host split of a
 * real deployment. LstmSession captures the host half of that split
 * behind one reusable object so every serving surface threads
 * recurrent state identically: the TCP daemon holds one per open wire
 * session, and the in-process client transports hold one per
 * client::Session. The M×V itself is injected per step as a callback,
 * so the same session code runs over a raw ExecutionBackend, an
 * InferenceServer future or a ClusterEngine scatter-gather.
 *
 * Bit-exactness: two sessions over bit-exact M×V paths and the same
 * machine configuration produce bit-identical hidden-state
 * trajectories — quantize, M×V, dequantize and applyGates are all
 * deterministic — which is what lets the client equivalence suite
 * demand identical h sequences across local, cluster and TCP
 * endpoints.
 *
 * Not thread-safe: a session is a strictly sequential object (step
 * N+1 consumes step N's state); callers serialize access.
 */

#ifndef EIE_ENGINE_LSTM_SESSION_HH
#define EIE_ENGINE_LSTM_SESSION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/functional.hh"
#include "nn/lstm.hh"

namespace eie::engine {

/** The (X, H) shape of a packed-gate LSTM M×V model. */
struct LstmShape
{
    std::size_t input_size = 0;  ///< X: per-step input length
    std::size_t hidden_size = 0; ///< H: hidden/cell state length

    /**
     * Derive the shape from a served model's M×V sizes: a packed-gate
     * layer has input_size X + H + 1 and output_size 4H. Returns
     * false (with @p error naming the sizes) when no (X >= 1, H >= 1)
     * solves that — i.e. the model is not LSTM-shaped.
     */
    static bool derive(std::size_t model_input_size,
                       std::size_t model_output_size, LstmShape &out,
                       std::string &error);
};

/**
 * One streaming LSTM session: hidden and cell state plus the
 * quantize / pack / apply-gates host math around an injected M×V.
 */
class LstmSession
{
  public:
    /**
     * The injected M×V: consumes the packed [x; h; 1] raw fixed-point
     * vector, returns the raw gate pre-activations (length 4H). May
     * throw (DeadlineExpired, ServerStopped, transport errors...);
     * the step is then abandoned with the session state unchanged.
     */
    using Mxv = std::function<std::vector<std::int64_t>(
        std::vector<std::int64_t> packed_raw)>;

    LstmSession(const core::EieConfig &config, const LstmShape &shape);

    const LstmShape &shape() const { return shape_; }

    /** The current recurrent state (zeros before the first step). */
    const nn::LstmState &state() const { return state_; }

    /** Committed (successful) steps so far. */
    std::uint64_t steps() const { return steps_; }

    /** Reset the recurrent state to zeros. */
    void reset();

    /**
     * One time step: pack [x; state.h; 1], quantize, run @p mxv,
     * dequantize, apply the gates and commit the new state. Returns
     * the new hidden state. Throws std::invalid_argument when
     * x.size() != shape().input_size, std::runtime_error when the
     * M×V returns the wrong length, and rethrows whatever @p mxv
     * throws; on any throw the state is unchanged, so a failed step
     * (e.g. a deadline drop) may simply be retried.
     */
    nn::Vector step(const nn::Vector &x, const Mxv &mxv);

  private:
    LstmShape shape_;
    core::FunctionalModel functional_;
    /** Weight-free cell: packInput/applyGates host math only (the
     *  M×V those helpers surround is the injected callback). */
    nn::LstmCell gates_;
    nn::LstmState state_;
    std::uint64_t steps_ = 0;
};

} // namespace eie::engine

#endif // EIE_ENGINE_LSTM_SESSION_HH
