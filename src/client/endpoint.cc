#include "client/endpoint.hh"

#include <algorithm>
#include <vector>

#include "core/kernel/variant.hh"
#include "engine/backend.hh"

namespace eie::client {

namespace {

/** Split "a,b,c" on commas (no escaping; registry paths with commas
 *  are not supported by the grammar). */
std::vector<std::string>
splitComma(const std::string &text)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t comma = text.find(',', begin);
        if (comma == std::string::npos) {
            parts.push_back(text.substr(begin));
            break;
        }
        parts.push_back(text.substr(begin, comma - begin));
        begin = comma + 1;
    }
    return parts;
}

Status
badEndpoint(const std::string &detail)
{
    return Status::error(StatusCode::InvalidArgument,
                         detail + "\nendpoint grammar:\n" +
                             endpointGrammar());
}

Status
checkBackendName(const std::string &name)
{
    const std::vector<std::string> &names = engine::backendNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return Status::success();
    std::string known;
    for (const std::string &n : names)
        known += (known.empty() ? "" : ", ") + n;
    return badEndpoint("unknown backend '" + name + "' (known: " +
                       known + ")");
}

Status
checkKernelName(const std::string &name)
{
    const std::vector<std::string> &names =
        core::kernel::kernelVariantNames();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return Status::success();
    std::string known;
    for (const std::string &n : names)
        known += (known.empty() ? "" : ", ") + n;
    return badEndpoint("unknown kernel variant '" + name +
                       "' (known: " + known + ")");
}

Status
checkResidencyName(const std::string &name)
{
    if (name == "decoded" || name == "compressed" || name == "auto")
        return Status::success();
    return badEndpoint("unknown residency '" + name +
                       "' (known: decoded, compressed, auto)");
}

Status
parseCount(const std::string &key, const std::string &value,
           unsigned &out)
{
    // The length bound keeps std::stoul in range: the parse must
    // yield InvalidArgument, never an out_of_range escaping the
    // never-throws contract.
    if (value.empty() || value.size() > 7 ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return badEndpoint(key + "= needs a positive integer, got '" +
                           value + "'");
    const unsigned long parsed = std::stoul(value);
    if (parsed == 0 || parsed > 1u << 20)
        return badEndpoint(key + "= needs a positive integer, got '" +
                           value + "'");
    out = static_cast<unsigned>(parsed);
    return Status::success();
}

Status
parseLocal(const std::string &rest, ParsedEndpoint &out)
{
    const std::vector<std::string> parts = splitComma(rest);
    if (parts.empty() || parts.front().empty())
        return badEndpoint("local: endpoint needs a backend name");
    out.backend = parts.front();
    if (Status status = checkBackendName(out.backend); !status.ok())
        return status;

    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &part = parts[i];
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            return badEndpoint("local: option '" + part +
                               "' is not key=value");
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "kernel") {
            if (Status status = checkKernelName(value); !status.ok())
                return status;
            out.kernel = value;
        } else if (key == "residency") {
            if (Status status = checkResidencyName(value);
                !status.ok())
                return status;
            out.residency = value;
        } else if (key == "threads") {
            if (Status status = parseCount(key, value, out.threads);
                !status.ok())
                return status;
        } else if (key == "dir") {
            if (value.empty())
                return badEndpoint("dir= needs a path");
            out.dir = value;
        } else {
            return badEndpoint("unknown local: option '" + key + "'");
        }
    }
    return Status::success();
}

Status
parseCluster(const std::string &rest, ParsedEndpoint &out)
{
    const std::vector<std::string> parts = splitComma(rest);
    if (parts.empty() || parts.front().empty())
        return badEndpoint(
            "cluster: endpoint needs a registry directory");
    out.dir = parts.front();

    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &part = parts[i];
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            return badEndpoint("cluster: option '" + part +
                               "' is not key=value");
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "shards") {
            if (Status status = parseCount(key, value, out.shards);
                !status.ok())
                return status;
        } else if (key == "policy") {
            if (value != "replicated" && value != "partitioned")
                return badEndpoint("policy= must be 'replicated' or "
                                   "'partitioned', got '" +
                                   value + "'");
            out.placement = value;
        } else if (key == "backend") {
            if (Status status = checkBackendName(value); !status.ok())
                return status;
            out.cluster_backend = value;
        } else if (key == "kernel") {
            if (Status status = checkKernelName(value); !status.ok())
                return status;
            out.kernel = value;
        } else if (key == "residency") {
            if (Status status = checkResidencyName(value);
                !status.ok())
                return status;
            out.residency = value;
        } else if (key == "threads") {
            if (Status status = parseCount(key, value, out.threads);
                !status.ok())
                return status;
        } else {
            return badEndpoint("unknown cluster: option '" + key +
                               "'");
        }
    }
    return Status::success();
}

Status
parseHostPort(const std::string &scheme, const std::string &rest,
              ParsedEndpoint &out)
{
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size())
        return badEndpoint(scheme + "// endpoint needs HOST:PORT, "
                           "got '" + rest + "'");
    out.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    if (port.find_first_not_of("0123456789") != std::string::npos)
        return badEndpoint(scheme + "// port '" + port +
                           "' is not a number");
    if (port.size() > 5) // keeps std::stoul in range (never throws)
        return badEndpoint(scheme + "// port '" + port +
                           "' is out of range");
    const unsigned long parsed = std::stoul(port);
    if (parsed == 0 || parsed > 65535)
        return badEndpoint(scheme + "// port '" + port +
                           "' is out of range");
    out.port = static_cast<std::uint16_t>(parsed);
    return Status::success();
}

Status
parseTcp(const std::string &rest, ParsedEndpoint &out)
{
    return parseHostPort("tcp:", rest, out);
}

Status
parseHttp(const std::string &rest, ParsedEndpoint &out)
{
    const std::vector<std::string> parts = splitComma(rest);
    if (Status status = parseHostPort("http:", parts.front(), out);
        !status.ok())
        return status;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &part = parts[i];
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            return badEndpoint("http:// option '" + part +
                               "' is not key=value");
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "token") {
            if (value.empty())
                return badEndpoint("token= needs a value");
            out.token = value;
        } else {
            return badEndpoint("unknown http:// option '" + key +
                               "'");
        }
    }
    return Status::success();
}

} // namespace

const char *
transportKindName(TransportKind kind)
{
    switch (kind) {
      case TransportKind::Local: return "local";
      case TransportKind::Cluster: return "cluster";
      case TransportKind::Tcp: return "tcp";
      case TransportKind::Http: return "http";
    }
    return "local";
}

const char *
endpointGrammar()
{
    return
        "  local:<backend>[,kernel=K][,residency=R][,threads=N]"
        "[,dir=PATH]\n"
        "  cluster:<dir>[,shards=N][,policy=replicated|partitioned]"
        "[,backend=B][,kernel=K][,residency=R][,threads=N]\n"
        "  tcp://HOST:PORT\n"
        "  http://HOST:PORT[,token=TOKEN]";
}

Status
parseEndpoint(const std::string &endpoint, ParsedEndpoint &out)
{
    out = ParsedEndpoint{};
    if (endpoint.rfind("local:", 0) == 0) {
        out.kind = TransportKind::Local;
        return parseLocal(endpoint.substr(6), out);
    }
    if (endpoint.rfind("cluster:", 0) == 0) {
        out.kind = TransportKind::Cluster;
        return parseCluster(endpoint.substr(8), out);
    }
    if (endpoint.rfind("tcp://", 0) == 0) {
        out.kind = TransportKind::Tcp;
        return parseTcp(endpoint.substr(6), out);
    }
    if (endpoint.rfind("http://", 0) == 0) {
        out.kind = TransportKind::Http;
        return parseHttp(endpoint.substr(7), out);
    }
    return badEndpoint("endpoint '" + endpoint +
                       "' names no known transport");
}

} // namespace eie::client
