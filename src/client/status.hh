/**
 * @file
 * The client API's uniform error taxonomy.
 *
 * The repo's execution paths historically failed four different ways:
 * fatal() in the core/engine layers, exceptions from the transports,
 * failed futures from the servers and ok-byte error strings on the
 * wire. Every eie::client surface reports failures as a Status
 * instead — a small code from one closed set plus a human message —
 * so a caller handles a deadline drop, a missing model or a dead
 * connection the same way whether the endpoint is in-process or a
 * TCP daemon. The codes shared with the wire protocol
 * (InvalidArgument .. Unavailable) map 1:1 onto wire::ErrorCode;
 * ProtocolError and TransportError are client-local (an in-process
 * endpoint has no frames to corrupt or sockets to lose).
 */

#ifndef EIE_CLIENT_STATUS_HH
#define EIE_CLIENT_STATUS_HH

#include <cstdint>
#include <string>
#include <utility>

namespace eie::client {

/** Failure classes of every client operation. */
enum class StatusCode : std::uint8_t
{
    Ok = 0,
    /** Malformed request: wrong input length, bad endpoint option,
     *  a non-LSTM-shaped model behind openSession(), ... */
    InvalidArgument,
    /** Unknown model, version or session. */
    NotFound,
    /** The request's deadline expired while it was still queued. */
    DeadlineExpired,
    /** The endpoint is stopped, closed or shutting down. */
    Unavailable,
    /** The peer violated the wire protocol (malformed frame,
     *  version mismatch, unexpected message). */
    ProtocolError,
    /** The transport failed outright (cannot connect, DNS failure). */
    TransportError,
    /** Unclassified server-side failure. */
    Internal,
};

/** Stable upper-case name of @p code ("OK", "NOT_FOUND", ...). */
const char *statusCodeName(StatusCode code);

/** One operation's outcome: a code plus a human-readable message. */
struct Status
{
    StatusCode code = StatusCode::Ok;
    std::string message;

    bool ok() const { return code == StatusCode::Ok; }

    static Status
    success()
    {
        return {};
    }

    static Status
    error(StatusCode code, std::string message)
    {
        return {code, std::move(message)};
    }

    /** "OK" or "NOT_FOUND: model 'x' ..." for logs and fatals. */
    std::string toString() const;

    bool
    operator==(const Status &other) const
    {
        return code == other.code; // messages are advisory
    }
};

} // namespace eie::client

#endif // EIE_CLIENT_STATUS_HH
