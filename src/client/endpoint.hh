/**
 * @file
 * The endpoint-string grammar of eie::client::Client — one string
 * names any of the three transports plus its per-endpoint knobs:
 *
 *   local:<backend>[,kernel=K][,residency=R][,threads=N][,dir=PATH]
 *       In-process engine::ExecutionBackend (behind a per-model
 *       micro-batching InferenceServer). <backend> is a registry
 *       name ("scalar" | "compiled" | "sim"); dir= points at a
 *       ModelRegistry directory (defaults to
 *       ClientOptions::registry); residency= selects the compiled
 *       backend's resident stream form ("decoded" | "compressed" |
 *       "auto").
 *
 *   cluster:<dir>[,shards=N][,policy=replicated|partitioned]
 *                [,backend=B][,kernel=K][,residency=R][,threads=N]
 *       In-process serve::ClusterEngine(s) over the ModelRegistry at
 *       <dir>, via a ServingDirectory. Unset knobs fall back to
 *       ClientOptions::cluster.
 *
 *   tcp://HOST:PORT
 *       A remote eie_serve daemon over the binary wire protocol.
 *
 *   http://HOST:PORT[,token=TOKEN]
 *       A remote eie_gateway daemon over JSON/HTTP — the
 *       multi-tenant front door. token= is the bearer token sent as
 *       `Authorization: Bearer <TOKEN>` on every request (required
 *       when the gateway has tenants configured).
 *
 * Parsing is Status-returning (never fatal): endpoint strings come
 * from config files and CLI flags, and the client API's contract is
 * that bad input yields InvalidArgument, not a dead process.
 */

#ifndef EIE_CLIENT_ENDPOINT_HH
#define EIE_CLIENT_ENDPOINT_HH

#include <cstdint>
#include <string>

#include "client/status.hh"

namespace eie::client {

/** Which transport an endpoint string selects. */
enum class TransportKind
{
    Local,   ///< in-process ExecutionBackend
    Cluster, ///< in-process ClusterEngine via ServingDirectory
    Tcp,     ///< remote daemon over the wire protocol
    Http,    ///< remote gateway over JSON/HTTP
};

/** The stable name of @p kind ("local", "cluster", "tcp", "http"). */
const char *transportKindName(TransportKind kind);

/** A decoded endpoint string (fields beyond the selected transport's
 *  keep their "unset" defaults). */
struct ParsedEndpoint
{
    TransportKind kind = TransportKind::Local;

    // local:
    std::string backend = "compiled"; ///< execution backend name
    std::string dir;                  ///< registry dir ("" = options)

    // local: + cluster: (0 / "" = fall back to ClientOptions)
    std::string kernel;    ///< kernel variant name ("" = options)
    std::string residency; ///< resident stream form ("" = options)
    unsigned threads = 0;  ///< worker threads ("" = options)

    // cluster: (dir doubles as the registry directory)
    unsigned shards = 0;   ///< shard count (0 = options)
    std::string placement; ///< "replicated"/"partitioned" ("" = opts)
    std::string cluster_backend; ///< shard backend ("" = options)

    // tcp:// + http://
    std::string host;
    std::uint16_t port = 0;

    // http://
    std::string token; ///< bearer token ("" = unauthenticated)
};

/**
 * Parse @p endpoint into @p out. Returns InvalidArgument (naming the
 * offending part and the grammar) on anything malformed; unknown
 * backend/kernel/placement names are rejected here so they can never
 * reach the fatal()-validating factories underneath.
 */
Status parseEndpoint(const std::string &endpoint, ParsedEndpoint &out);

/** The grammar, one line per transport — for --help texts. */
const char *endpointGrammar();

} // namespace eie::client

#endif // EIE_CLIENT_ENDPOINT_HH
