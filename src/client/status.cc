#include "client/status.hh"

namespace eie::client {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::NotFound: return "NOT_FOUND";
      case StatusCode::DeadlineExpired: return "DEADLINE_EXPIRED";
      case StatusCode::Unavailable: return "UNAVAILABLE";
      case StatusCode::ProtocolError: return "PROTOCOL_ERROR";
      case StatusCode::TransportError: return "TRANSPORT_ERROR";
      case StatusCode::Internal: return "INTERNAL";
    }
    return "INTERNAL";
}

std::string
Status::toString() const
{
    if (ok() && message.empty())
        return statusCodeName(code);
    return std::string(statusCodeName(code)) + ": " + message;
}

} // namespace eie::client
