#include "client/retry.hh"

#include <algorithm>
#include <cmath>

namespace eie::client {

std::chrono::microseconds
retryBackoff(const RetryPolicy &policy, unsigned attempt)
{
    double nominal =
        static_cast<double>(policy.initial_backoff.count()) *
        std::pow(std::max(policy.multiplier, 1.0),
                 static_cast<double>(attempt));
    nominal = std::min(
        nominal, static_cast<double>(policy.max_backoff.count()));

    // Per-attempt jitter from a splitmix-style hash of (seed,
    // attempt): stateless, so backoff(policy, k) never depends on
    // which attempts were computed before it.
    std::uint64_t z = policy.jitter_seed +
        (attempt + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double unit =
        static_cast<double>(z >> 11) / 9007199254740992.0; // [0, 1)
    const double jittered = nominal * (0.5 + 0.5 * unit);
    return std::chrono::microseconds(
        static_cast<std::int64_t>(jittered));
}

bool
retryableStatus(StatusCode code)
{
    // Unavailable: the server shed, stopped or dropped us — it said
    // "not now", not "never". TransportError: the connection died;
    // the transport reconnects on the next submit. Everything else
    // (bad request, missing model, expired deadline, internal error)
    // would fail identically on a retry.
    return code == StatusCode::Unavailable ||
        code == StatusCode::TransportError;
}

} // namespace eie::client
