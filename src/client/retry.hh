/**
 * @file
 * Client-side retry policy: bounded re-submission of idempotent
 * requests that failed with a transient status (Unavailable — a shed
 * or stopped server — or TransportError — a dead connection), with
 * exponential backoff and deterministic jitter so tests replay the
 * exact schedule. A per-request wall-clock timeout bounds the total
 * wait across all attempts.
 *
 * The backoff schedule is a pure function of (policy, attempt): no
 * global RNG, no clock reads. Jitter decorrelates a thundering herd
 * of clients that all saw the same shed — give each client its own
 * jitter_seed — while keeping any one client reproducible.
 */

#ifndef EIE_CLIENT_RETRY_HH
#define EIE_CLIENT_RETRY_HH

#include <chrono>
#include <cstdint>

#include "client/status.hh"

namespace eie::client {

/** When and how often a Client re-submits a failed frame. */
struct RetryPolicy
{
    /** Total tries including the first; 1 (the default) disables
     *  retry entirely. */
    unsigned max_attempts = 1;

    /** Backoff before the first retry; attempt k waits
     *  initial_backoff * multiplier^k, capped at max_backoff, scaled
     *  by the jitter factor. */
    std::chrono::microseconds initial_backoff{1000};
    double multiplier = 2.0;
    std::chrono::microseconds max_backoff{100000};

    /** Seed of the deterministic jitter stream; each attempt's wait
     *  is scaled into [1/2, 1] of its nominal backoff. */
    std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;

    /** Wall-clock budget per request across all attempts (waiting
     *  and backing off); expiry yields DeadlineExpired. 0 = none. */
    std::chrono::microseconds timeout{0};
};

/**
 * The wait before retry number @p attempt (0-based: attempt 0 is the
 * wait between the first try and the second). Deterministic.
 */
std::chrono::microseconds retryBackoff(const RetryPolicy &policy,
                                       unsigned attempt);

/** Whether @p code marks a transient failure worth retrying. */
bool retryableStatus(StatusCode code);

} // namespace eie::client

#endif // EIE_CLIENT_RETRY_HH
