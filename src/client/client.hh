/**
 * @file
 * eie::client::Client — the one front door to every EIE execution
 * path.
 *
 * The repo grew four divergent ways to run an inference — direct
 * NetworkRunner/FunctionalModel calls, engine::InferenceServer
 * futures, ClusterEngine::submit and hand-rolled wire frames over a
 * TcpClient — each with its own input types and failure conventions.
 * Client replaces them with one typed request/response API
 * (InferenceRequest/InferenceResult plus the Status taxonomy of
 * client/status.hh) constructed from an endpoint string
 * (client/endpoint.hh) that resolves to any of the three transports:
 *
 *   local:<backend>...   in-process ExecutionBackend per model,
 *                        behind a micro-batching InferenceServer
 *   cluster:<dir>...     in-process sharded ClusterEngine(s) via a
 *                        ServingDirectory over a ModelRegistry
 *   tcp://host:port      a remote eie_serve daemon over the binary
 *                        wire protocol (async, id-correlated)
 *
 * The same request produces bit-exact outputs and identical Status
 * codes on all three (tests/client/test_client.cc holds that
 * contract), so moving a caller from an in-process prototype to a
 * daemon is an endpoint-string edit. openSession() adds the
 * recurrent half: a Session threads LSTM hidden/cell state across
 * sequential step() calls — the NT-LSTM serving path.
 *
 * Error convention: no method of Client/Session throws; every
 * failure is a Status (in the return, the result, or per frame).
 * The one deliberate exception: misconfigurations the underlying
 * factories treat as fatal (e.g. forcing kernel=vector onto a layer
 * whose formats would overflow the SIMD lanes) stay fatal — they are
 * operator errors, not request errors.
 *
 * Thread safety: Client is safe to share across threads. A Session
 * is strictly sequential (step N+1 consumes step N's state) and must
 * be driven by one thread at a time.
 */

#ifndef EIE_CLIENT_CLIENT_HH
#define EIE_CLIENT_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "client/endpoint.hh"
#include "client/retry.hh"
#include "client/status.hh"
#include "core/config.hh"
#include "core/functional.hh"
#include "core/plan.hh"
#include "engine/server.hh"
#include "nn/tensor.hh"
#include "serve/cluster.hh"

namespace eie::client {

namespace detail {
class Transport;
class SessionImpl;
} // namespace detail

/**
 * One typed inference request: a ragged batch of frames for one
 * model, as raw fixed-point activations or as floats (quantized by
 * the client), plus per-request scheduling knobs. Exactly one of
 * `fixed` / `floats` may be non-empty.
 */
struct InferenceRequest
{
    std::string model;         ///< registry/in-memory model name
    std::uint32_t version = 0; ///< 0 = latest published

    /** Raw fixed-point activation frames (ragged batch: any count,
     *  each frame one full input vector). */
    std::vector<std::vector<std::int64_t>> fixed;

    /** Float activation frames; the client quantizes them into the
     *  endpoint's activation format and fills
     *  InferenceResult::float_outputs. */
    std::vector<nn::Vector> floats;

    std::int32_t priority = 0; ///< higher pops first under load

    /** Time budget per frame from submission; zero = none. */
    std::chrono::microseconds deadline{0};

    /** Whether re-submitting this request is safe. Inference is
     *  naturally idempotent, so this defaults true; clear it for
     *  requests with side effects the caller tracks externally —
     *  ClientOptions::retry only ever retries idempotent requests. */
    bool idempotent = true;
};

/** The response half: per-frame outputs plus the uniform Status. */
struct InferenceResult
{
    /** Ok iff every frame succeeded; otherwise the first failing
     *  frame's status. */
    Status status;

    /** One status per input frame, in request order. */
    std::vector<Status> frame_status;

    /** Raw fixed-point outputs; a failed frame's entry is empty. */
    std::vector<std::vector<std::int64_t>> outputs;

    /** Dequantized outputs, filled only for float requests. */
    std::vector<nn::Vector> float_outputs;

    /** One trace id per input frame (allocated by submit); look the
     *  ids up in Client::traceDump() to see each frame's span
     *  timeline. */
    std::vector<std::uint64_t> trace_ids;

    bool ok() const { return status.ok(); }
};

/** What an endpoint knows about one served model. */
struct ModelInfo
{
    std::string model;
    std::uint32_t version = 0; ///< resolved (never 0 on success)
    std::size_t input_size = 0;
    std::size_t output_size = 0;
    unsigned shards = 1;
    std::string placement = "replicated";
};

/** One layer's kernel dispatch decision as seen by an endpoint: the
 *  variant the last sweep executed and the measured activation
 *  density that drove density-aware auto dispatch. */
struct LayerKernelStats
{
    std::string model;              ///< owning model ("" single-model)
    std::string layer;              ///< compiled layer name
    std::string kernel;             ///< last executed variant
    double act_density = -1.0;      ///< last sampled nonzero fraction
    double mean_act_density = 0.0;  ///< mean over measured sweeps

    /** Resident stream form ("decoded"/"compressed"; "" when the
     *  endpoint does not report it). */
    std::string residency;
    std::uint64_t decoded_bytes = 0;    ///< resident decoded bytes
    std::uint64_t compressed_bytes = 0; ///< resident compressed bytes
    double decode_us = 0.0; ///< mean per-sweep decode time, us
};

/** Aggregate serving statistics of an endpoint. Structured fields
 *  are filled by the in-process transports; `json` carries the
 *  transport-native rendering for all three. */
struct EndpointStats
{
    std::uint64_t requests = 0;
    std::uint64_t dropped_deadline = 0;
    std::uint64_t requests_shed = 0; ///< rejected by admission control
    double mean_batch = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;
    std::size_t max_queue_depth = 0;

    /** Per-layer kernel dispatch decisions (in-process transports;
     *  tcp endpoints carry them inside `json`). */
    std::vector<LayerKernelStats> layers;

    std::string json;
};

/** An in-memory model served by a `local:` endpoint — how tools and
 *  examples that build layers on the fly (eie_sim, quickstart) put
 *  them behind the Client API without a registry directory. */
struct LocalModel
{
    std::string name;
    /** The compiled stack, execution order; the plans (and what they
     *  point into) must outlive the Client. Served as version 1. */
    std::vector<const core::LayerPlan *> plans;
};

/** Construction-time configuration of a Client. */
struct ClientOptions
{
    /** Machine configuration: planning (local/cluster) and float
     *  quantization. Must match the daemon's for tcp:// endpoints —
     *  raw fixed-point frames are interpreted in its formats. */
    core::EieConfig config;

    /** Micro-batcher policy of every `local:` per-model server and
     *  (unless overridden there) of ClusterOptions::server. */
    engine::ServerOptions server;

    /** Fallback registry directory of `local:` endpoints without a
     *  dir= option. */
    std::string registry;

    /** `cluster:` endpoint defaults; endpoint options override the
     *  matching fields, and `server` above overrides its
     *  micro-batcher policy. */
    serve::ClusterOptions cluster;

    /** In-memory models for `local:` endpoints (looked up before the
     *  registry directory). */
    std::vector<LocalModel> models;

    /** Retry/backoff/timeout policy applied to every idempotent
     *  request (see client/retry.hh). The default retries nothing. */
    RetryPolicy retry;
};

/**
 * A streaming LSTM session: recurrent hidden/cell state threaded
 * across sequential step() calls. Obtained from Client::openSession;
 * closing (or destroying) it releases any server-side state. A
 * Session borrows its Client's transport and must not outlive the
 * Client that opened it.
 */
class Session
{
  public:
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** One committed step's outcome. */
    struct StepResult
    {
        Status status;
        nn::Vector h; ///< new hidden state (empty on failure)

        /** The step's trace id (allocated per step, 0 when the
         *  attempt failed before submission). */
        std::uint64_t trace_id = 0;

        bool ok() const { return status.ok(); }
    };

    /**
     * One time step on input @p x (length inputSize()). On success
     * the state advances and `h` is the new hidden state; on failure
     * (deadline drop, closed endpoint, wrong length...) the state is
     * unchanged and the step may be retried.
     */
    StepResult step(const nn::Vector &x, std::int32_t priority = 0,
                    std::chrono::microseconds deadline =
                        std::chrono::microseconds{0});

    std::size_t inputSize() const;  ///< X: per-step input length
    std::size_t hiddenSize() const; ///< H: hidden state length
    const std::string &model() const;

    /** Committed (successful) steps so far. */
    std::uint64_t steps() const;

    /** Release the session (server-side state included). Idempotent;
     *  further step() calls return Unavailable. */
    void close();

  private:
    friend class Client;
    explicit Session(std::unique_ptr<detail::SessionImpl> impl);

    std::unique_ptr<detail::SessionImpl> impl_;
};

/** The transport-agnostic typed client. */
class Client
{
  public:
    /**
     * Resolve @p endpoint (see client/endpoint.hh for the grammar)
     * and connect. Returns nullptr with @p status set on a malformed
     * endpoint or an unreachable daemon; never throws.
     */
    static std::unique_ptr<Client>
    connect(const std::string &endpoint, const ClientOptions &options,
            Status &status);

    /** connect() with default options (fatal on failure — for
     *  callers without a failure path of their own). */
    static std::unique_ptr<Client>
    connectOrDie(const std::string &endpoint,
                 const ClientOptions &options = {});

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** The endpoint string the client was built from. */
    const std::string &endpoint() const { return endpoint_; }

    /** The resolved transport's name: "local", "cluster" or "tcp". */
    const char *transport() const;

    /**
     * Submit @p request asynchronously; every frame is in flight at
     * once (pipelined on tcp, micro-batched in process). The future
     * never throws — failures arrive as Status codes in the result.
     * Waiting happens lazily on get().
     */
    std::future<InferenceResult> submit(InferenceRequest request);

    /** Blocking convenience wrapper: submit and wait. */
    InferenceResult infer(const InferenceRequest &request);

    /** Single-frame conveniences for the common case. */
    InferenceResult inferRaw(const std::string &model,
                             std::vector<std::int64_t> frame);
    InferenceResult inferFloat(const std::string &model,
                               const nn::Vector &frame);

    /** Describe @p model at @p version (0 = latest). */
    Status info(const std::string &model, std::uint32_t version,
                ModelInfo &out);

    /**
     * Open a streaming LSTM session on @p model (which must be
     * packed-gate LSTM-shaped: (4H) x (X+H+1); the M×V runs with no
     * drain non-linearity). Returns nullptr with @p status set when
     * the model is missing or not LSTM-shaped.
     */
    std::unique_ptr<Session> openSession(const std::string &model,
                                         std::uint32_t version,
                                         Status &status);

    /** Aggregate serving statistics of the endpoint. */
    Status stats(EndpointStats &out);

    /**
     * Dump the endpoint's span ring as a chrome://tracing JSON
     * document (load it in chrome://tracing or Perfetto). In-process
     * endpoints render this process's ring; tcp endpoints ask the
     * daemon (requires a wire-v3 server). Look up a request's spans
     * by the trace id submit() put in InferenceResult::trace_ids.
     */
    Status traceDump(std::string &out);

    /** Quantize a float frame into the client's activation format. */
    std::vector<std::int64_t> quantize(const nn::Vector &input) const;

    /** Dequantize a raw output back to floats. */
    nn::Vector dequantize(const std::vector<std::int64_t> &raw) const;

    /** Stop the endpoint's in-process engines / drop the connection.
     *  Idempotent; subsequent requests return Unavailable. */
    void close();

  private:
    Client(std::string endpoint, TransportKind kind,
           const ClientOptions &options,
           std::unique_ptr<detail::Transport> transport);

    std::string endpoint_;
    TransportKind kind_;
    core::FunctionalModel functional_; ///< float <-> raw conversions
    RetryPolicy retry_;
    /** Shared: the deferred futures submit() hands out co-own the
     *  transport so retries work even past the Client's lifetime. */
    std::shared_ptr<detail::Transport> transport_;
};

} // namespace eie::client

#endif // EIE_CLIENT_CLIENT_HH
