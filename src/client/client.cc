#include "client/client.hh"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "core/kernel/variant.hh"
#include "engine/lstm_session.hh"
#include "gateway/http.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace eie::client {

namespace detail {

/** One frame's outcome as it crosses a transport boundary. */
struct FrameResult
{
    Status status;
    std::vector<std::int64_t> output;
};

/** Map the engine's future exceptions onto the Status taxonomy. */
Status
statusFromException(std::exception_ptr exception)
{
    try {
        std::rethrow_exception(std::move(exception));
    } catch (const engine::DeadlineExpired &error) {
        return Status::error(StatusCode::DeadlineExpired,
                             error.what());
    } catch (const engine::ServerStopped &error) {
        return Status::error(StatusCode::Unavailable, error.what());
    } catch (const engine::ServerOverloaded &error) {
        // Admission control shed the request: the server is healthy
        // but saturated — the canonical retry-after-backoff signal.
        return Status::error(StatusCode::Unavailable, error.what());
    } catch (const std::invalid_argument &error) {
        return Status::error(StatusCode::InvalidArgument,
                             error.what());
    } catch (const std::exception &error) {
        return Status::error(StatusCode::Internal, error.what());
    }
}

/**
 * A no-throw frame future supporting deadline-bounded waits (which
 * std::async's deferred futures cannot: wait_until() on them returns
 * without running the task). Wraps either an immediately-known
 * result or a promise-backed future plus a mapper onto FrameResult;
 * the mapping runs on the waiter's thread at take() time.
 */
class FrameFuture
{
  public:
    FrameFuture() = default;

    /** An already-resolved frame (validation failures). */
    static FrameFuture
    ready(Status status)
    {
        FrameFuture f;
        f.immediate_ = FrameResult{std::move(status), {}};
        return f;
    }

    /** Wrap an engine future (reports failure by throwing on get). */
    static FrameFuture
    ofEngine(std::future<std::vector<std::int64_t>> future)
    {
        auto shared = std::make_shared<
            std::future<std::vector<std::int64_t>>>(
            std::move(future));
        FrameFuture f;
        f.wait_until_ = [shared](
                            std::chrono::steady_clock::time_point t) {
            return shared->wait_until(t) ==
                std::future_status::ready;
        };
        f.take_ = [shared]() -> FrameResult {
            try {
                return {Status::success(), shared->get()};
            } catch (...) {
                return {statusFromException(std::current_exception()),
                        {}};
            }
        };
        return f;
    }

    /** Wrap a wire InferResponse future (no-throw value). */
    static FrameFuture
    ofWire(std::future<serve::wire::InferResponse> future);

    /** Wrap an async FrameResult future (the HTTP transport's
     *  one-thread-per-in-flight-frame round trips). */
    static FrameFuture
    ofAsync(std::future<FrameResult> future)
    {
        auto shared =
            std::make_shared<std::future<FrameResult>>(
                std::move(future));
        FrameFuture f;
        f.wait_until_ = [shared](
                            std::chrono::steady_clock::time_point t) {
            return shared->wait_until(t) ==
                std::future_status::ready;
        };
        f.take_ = [shared]() -> FrameResult {
            try {
                return shared->get();
            } catch (...) {
                return {statusFromException(std::current_exception()),
                        {}};
            }
        };
        return f;
    }

    /**
     * Block until resolved or @p deadline (max() = forever); false
     * on timeout — the frame stays in flight and take() may still be
     * called later.
     */
    bool
    waitUntil(std::chrono::steady_clock::time_point deadline) const
    {
        if (immediate_ || !wait_until_)
            return true;
        if (deadline ==
            std::chrono::steady_clock::time_point::max()) {
            // wait_until(max()) overflows some libstdc++ clocks;
            // waiting on a year keeps "forever" finite and safe.
            deadline = std::chrono::steady_clock::now() +
                std::chrono::hours(24 * 365);
        }
        return wait_until_(deadline);
    }

    /** The frame's outcome; blocks until resolved. */
    FrameResult
    take()
    {
        if (immediate_)
            return std::move(*immediate_);
        waitUntil(std::chrono::steady_clock::time_point::max());
        return take_();
    }

  private:
    std::optional<FrameResult> immediate_;
    std::function<bool(std::chrono::steady_clock::time_point)>
        wait_until_;
    std::function<FrameResult()> take_;
};

/** An already-resolved FrameFuture (validation failures). */
FrameFuture
readyFrame(Status status)
{
    return FrameFuture::ready(std::move(status));
}

/** Map a wire error code (+ message) onto the Status taxonomy. */
Status
statusFromWire(serve::wire::ErrorCode code, std::string message)
{
    switch (code) {
      case serve::wire::ErrorCode::InvalidArgument:
        return Status::error(StatusCode::InvalidArgument,
                             std::move(message));
      case serve::wire::ErrorCode::NotFound:
        return Status::error(StatusCode::NotFound,
                             std::move(message));
      case serve::wire::ErrorCode::DeadlineExpired:
        return Status::error(StatusCode::DeadlineExpired,
                             std::move(message));
      case serve::wire::ErrorCode::Unavailable:
        return Status::error(StatusCode::Unavailable,
                             std::move(message));
      case serve::wire::ErrorCode::ProtocolError:
        return Status::error(StatusCode::ProtocolError,
                             std::move(message));
      case serve::wire::ErrorCode::Internal:
        break;
    }
    return Status::error(StatusCode::Internal, std::move(message));
}

/** ServingDirectory lookup failures: a missing model is the
 *  caller's NotFound; a policy rejection is the deployment's
 *  problem, hence Internal. */
Status
statusFromDirectoryError(serve::ServingDirectory::LookupStatus status,
                         std::string error)
{
    const StatusCode code =
        status == serve::ServingDirectory::LookupStatus::NotFound
        ? StatusCode::NotFound
        : StatusCode::Internal;
    return Status::error(code, std::move(error));
}

FrameFuture
FrameFuture::ofWire(std::future<serve::wire::InferResponse> future)
{
    auto shared = std::make_shared<
        std::future<serve::wire::InferResponse>>(std::move(future));
    FrameFuture f;
    f.wait_until_ = [shared](
                        std::chrono::steady_clock::time_point t) {
        return shared->wait_until(t) == std::future_status::ready;
    };
    f.take_ = [shared]() -> FrameResult {
        serve::wire::InferResponse r = shared->get();
        if (!r.ok)
            return {statusFromWire(r.code, std::move(r.error)), {}};
        return {Status::success(), std::move(r.output)};
    };
    return f;
}

/** Clamp a request deadline into the wire's u32 microsecond field. */
std::uint32_t
wireDeadlineUs(std::chrono::microseconds deadline)
{
    const auto us = deadline.count();
    if (us <= 0)
        return 0;
    return static_cast<std::uint32_t>(std::min<std::int64_t>(
        us, std::numeric_limits<std::uint32_t>::max()));
}

// ------------------------------------------------------------ sessions

/** The transport-facing half of a client::Session. */
class SessionImpl
{
  public:
    virtual ~SessionImpl() = default;

    virtual Session::StepResult
    step(const nn::Vector &x, std::int32_t priority,
         std::chrono::microseconds deadline) = 0;
    virtual void close() = 0;

    virtual std::size_t inputSize() const = 0;
    virtual std::size_t hiddenSize() const = 0;
    virtual const std::string &model() const = 0;
    virtual std::uint64_t steps() const = 0;
};

/**
 * A session whose recurrent state lives in this process (local: and
 * cluster: endpoints): engine::LstmSession around a submit callback
 * that throws the engine's failure exceptions on get().
 */
class InProcessSession final : public SessionImpl
{
  public:
    /** The per-step M×V: packed raw input + scheduling knobs and the
     *  step's trace id in, raw pre-activations out; throws on
     *  failure. */
    using Mxv = std::function<std::vector<std::int64_t>(
        std::vector<std::int64_t>, std::int32_t,
        std::chrono::microseconds, std::uint64_t)>;

    InProcessSession(std::string model, const core::EieConfig &config,
                     const engine::LstmShape &shape, Mxv mxv)
        : model_(std::move(model)), session_(config, shape),
          mxv_(std::move(mxv))
    {}

    Session::StepResult
    step(const nn::Vector &x, std::int32_t priority,
         std::chrono::microseconds deadline) override
    {
        if (closed_)
            return {Status::error(StatusCode::Unavailable,
                                  "session is closed"),
                    {}};
        const std::uint64_t trace_id = obs::nextTraceId();
        try {
            nn::Vector h = session_.step(
                x, [&](std::vector<std::int64_t> packed) {
                    return mxv_(std::move(packed), priority,
                                deadline, trace_id);
                });
            return {Status::success(), std::move(h), trace_id};
        } catch (...) {
            return {statusFromException(std::current_exception()),
                    {},
                    trace_id};
        }
    }

    void close() override { closed_ = true; }

    std::size_t
    inputSize() const override
    {
        return session_.shape().input_size;
    }
    std::size_t
    hiddenSize() const override
    {
        return session_.shape().hidden_size;
    }
    const std::string &model() const override { return model_; }
    std::uint64_t steps() const override { return session_.steps(); }

  private:
    std::string model_;
    engine::LstmSession session_;
    Mxv mxv_;
    bool closed_ = false;
};

/** A session proxying wire Session frames (the state lives in the
 *  daemon). Pins its connection by shared_ptr: a transport that
 *  reconnects meanwhile does not pull this session's socket (and the
 *  recurrent state only the daemon end of it knows) out from under
 *  it. */
class TcpSession final : public SessionImpl
{
  public:
    TcpSession(std::shared_ptr<serve::TcpClient> client,
               std::uint64_t session_id, std::string model,
               std::size_t input_size, std::size_t hidden_size)
        : client_(std::move(client)), session_id_(session_id),
          model_(std::move(model)), input_size_(input_size),
          hidden_size_(hidden_size)
    {}

    ~TcpSession() override { close(); }

    Session::StepResult
    step(const nn::Vector &x, std::int32_t priority,
         std::chrono::microseconds deadline) override
    {
        if (closed_)
            return {Status::error(StatusCode::Unavailable,
                                  "session is closed"),
                    {}};
        const std::uint64_t trace_id = obs::nextTraceId();
        serve::wire::SessionState state =
            client_
                ->submitStep(session_id_,
                             std::vector<float>(x.begin(), x.end()),
                             priority, wireDeadlineUs(deadline),
                             trace_id)
                .get();
        if (!state.ok)
            return {statusFromWire(state.code,
                                   std::move(state.error)),
                    {},
                    trace_id};
        ++steps_;
        return {Status::success(),
                nn::Vector(state.h.begin(), state.h.end()),
                trace_id};
    }

    void
    close() override
    {
        if (closed_)
            return;
        closed_ = true;
        client_->closeSession(session_id_);
    }

    std::size_t inputSize() const override { return input_size_; }
    std::size_t hiddenSize() const override { return hidden_size_; }
    const std::string &model() const override { return model_; }
    std::uint64_t steps() const override { return steps_; }

  private:
    std::shared_ptr<serve::TcpClient> client_;
    std::uint64_t session_id_;
    std::string model_;
    std::size_t input_size_;
    std::size_t hidden_size_;
    std::uint64_t steps_ = 0;
    bool closed_ = false;
};

// ----------------------------------------------------------- transport

/** One endpoint's execution surface behind the typed API. */
class Transport
{
  public:
    virtual ~Transport() = default;

    virtual Status info(const std::string &model,
                        std::uint32_t version, ModelInfo &out) = 0;
    virtual FrameFuture
    submitFrame(const std::string &model, std::uint32_t version,
                std::vector<std::int64_t> frame, std::int32_t priority,
                std::chrono::microseconds deadline,
                std::uint64_t trace_id) = 0;
    virtual std::unique_ptr<SessionImpl>
    openSession(const std::string &model, std::uint32_t version,
                Status &status) = 0;
    virtual Status stats(EndpointStats &out) = 0;
    virtual Status traceDump(std::string &out) = 0;
    virtual void close() = 0;
};

/** The in-process transports' trace dump: this process's span ring
 *  (the spans the engine/cluster recorded right here). */
Status
localTraceDump(std::string &out)
{
    out = obs::renderChromeTrace(obs::processTraceRing().snapshot());
    return Status::success();
}

// ------------------------------------------------------ LocalTransport

/**
 * `local:` — one engine::ExecutionBackend per served model (built by
 * name/threads/kernel from the endpoint), each behind its own
 * micro-batching InferenceServer so scheduling semantics (priority,
 * deadline drops, stopped-endpoint failures) match the remote
 * transports exactly. Models come from ClientOptions::models
 * (in-memory stacks) or a ModelRegistry directory.
 */
class LocalTransport final : public Transport
{
  public:
    LocalTransport(const ParsedEndpoint &endpoint,
                   const ClientOptions &options)
        : config_(options.config), backend_name_(endpoint.backend),
          kernel_(endpoint.kernel.empty()
                      ? core::kernel::KernelVariant::Auto
                      : core::kernel::kernelVariantFromName(
                            endpoint.kernel)),
          residency_(endpoint.residency.empty()
                         ? core::kernel::Residency::Decoded
                         : core::kernel::residencyFromName(
                               endpoint.residency)),
          threads_(endpoint.threads ? endpoint.threads : 1),
          server_options_(options.server), models_(options.models)
    {
        const std::string dir =
            !endpoint.dir.empty() ? endpoint.dir : options.registry;
        if (!dir.empty())
            registry_ = std::make_unique<serve::ModelRegistry>(
                dir, config_);
    }

    Status
    info(const std::string &model, std::uint32_t version,
         ModelInfo &out) override
    {
        Status status;
        const Entry *entry =
            entryFor(model, version, nn::Nonlinearity::ReLU, status);
        if (entry != nullptr)
            out = entry->info;
        return status;
    }

    FrameFuture
    submitFrame(const std::string &model, std::uint32_t version,
                std::vector<std::int64_t> frame, std::int32_t priority,
                std::chrono::microseconds deadline,
                std::uint64_t trace_id) override
    {
        Status status;
        Entry *entry =
            entryFor(model, version, nn::Nonlinearity::ReLU, status);
        if (entry == nullptr)
            return readyFrame(std::move(status));
        if (frame.size() != entry->info.input_size)
            return readyFrame(Status::error(
                StatusCode::InvalidArgument,
                "input length " + std::to_string(frame.size()) +
                    " != model input size " +
                    std::to_string(entry->info.input_size)));
        engine::SubmitOptions submit;
        submit.priority = priority;
        submit.deadline = deadline;
        submit.trace_id = trace_id;
        return FrameFuture::ofEngine(
            entry->server->submit(std::move(frame), submit));
    }

    std::unique_ptr<SessionImpl>
    openSession(const std::string &model, std::uint32_t version,
                Status &status) override
    {
        // Registry-backed entries get a dedicated None-drain plan
        // (the gate pre-activations feed host sigmoids/tanh);
        // in-memory stacks are served as registered — the caller
        // owns their nonlinearity.
        Entry *entry =
            entryFor(model, version, nn::Nonlinearity::None, status);
        if (entry == nullptr)
            return nullptr;
        engine::LstmShape shape;
        std::string error;
        if (!engine::LstmShape::derive(entry->info.input_size,
                                       entry->info.output_size,
                                       shape, error)) {
            status = Status::error(StatusCode::InvalidArgument,
                                   std::move(error));
            return nullptr;
        }
        engine::InferenceServer *server = entry->server.get();
        std::string model_name = entry->info.model;
        status = Status::success();
        return std::make_unique<InProcessSession>(
            std::move(model_name), config_, shape,
            [server](std::vector<std::int64_t> packed,
                     std::int32_t priority,
                     std::chrono::microseconds deadline,
                     std::uint64_t trace_id) {
                engine::SubmitOptions submit;
                submit.priority = priority;
                submit.deadline = deadline;
                submit.trace_id = trace_id;
                return server->submit(std::move(packed), submit)
                    .get();
            });
    }

    Status
    stats(EndpointStats &out) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = EndpointStats{};
        // Latencies aggregate by histogram merge — percentiles of
        // the union, not the statistically-meaningless
        // request-weighted average of per-model percentiles.
        obs::HistogramSnapshot latency{};
        obs::JsonWriter json;
        json.beginObject();
        json.key("models");
        json.beginArray();
        for (const auto &[key, entry] : entries_) {
            const engine::ServerStats stats = entry.server->stats();
            out.requests += stats.requests;
            out.dropped_deadline += stats.dropped_deadline;
            out.requests_shed += stats.requests_shed;
            out.mean_batch += stats.mean_batch *
                static_cast<double>(stats.requests);
            latency.merge(stats.latency);
            out.max_queue_depth =
                std::max(out.max_queue_depth, stats.max_queue_depth);
            for (const engine::LayerDispatchStats &layer :
                 stats.layers)
                out.layers.push_back({entry.info.model, layer.layer,
                                      layer.kernel,
                                      layer.last_act_density,
                                      layer.mean_act_density,
                                      layer.residency,
                                      layer.decoded_bytes,
                                      layer.compressed_bytes,
                                      layer.mean_decode_us});
            json.beginObject();
            json.field("model", entry.info.model);
            json.field("requests", stats.requests);
            json.field("requests_shed", stats.requests_shed);
            json.field("mean_batch", stats.mean_batch);
            json.field("p50_latency_us", stats.p50_latency_us);
            json.field("p95_latency_us", stats.p95_latency_us);
            json.field("p99_latency_us", stats.p99_latency_us);
            json.field("p999_latency_us", stats.p999_latency_us);
            json.field("forming_delay_us", stats.forming_delay_us);
            json.key("layers");
            json.beginArray();
            for (const engine::LayerDispatchStats &layer :
                 stats.layers) {
                json.beginObject();
                json.field("layer", layer.layer);
                json.field("kernel", layer.kernel);
                json.field("act_density", layer.last_act_density);
                json.field("mean_act_density",
                           layer.mean_act_density);
                json.field("residency", layer.residency);
                json.field("decoded_bytes", layer.decoded_bytes);
                json.field("compressed_bytes",
                           layer.compressed_bytes);
                json.field("decode_us", layer.mean_decode_us);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.endObject();
        if (out.requests > 0)
            out.mean_batch /= static_cast<double>(out.requests);
        const obs::LatencySummary summary = latency.summary();
        out.p50_latency_us = summary.p50;
        out.p95_latency_us = summary.p95;
        out.p99_latency_us = summary.p99;
        out.p999_latency_us = summary.p999;
        out.json = json.str();
        return Status::success();
    }

    Status
    traceDump(std::string &out) override
    {
        return localTraceDump(out);
    }

    void
    close() override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        for (auto &[key, entry] : entries_)
            entry.server->stop();
    }

  private:
    struct Entry
    {
        /** Keeps a registry model's plan alive (null in-memory). */
        std::shared_ptr<const serve::LoadedModel> loaded;
        std::unique_ptr<engine::InferenceServer> server;
        ModelInfo info;
    };

    /** The cached entry under @p key, or null. Map nodes are stable
     *  and never erased, so returned pointers outlive the lock. */
    Entry *
    findEntry(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Insert @p entry under @p key unless the endpoint closed or a
     *  racing build won; a losing build is discarded (its server
     *  stops in the destructor). */
    Entry *
    insertEntry(const std::string &key, Entry entry, Status &status)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            status = Status::error(StatusCode::Unavailable,
                                   "client endpoint is closed");
            return nullptr;
        }
        status = Status::success();
        auto it = entries_.find(key);
        if (it == entries_.end())
            it = entries_.emplace(key, std::move(entry)).first;
        return &it->second;
    }

    /** Find-or-build the served entry. Model resolution and backend
     *  compilation happen outside mutex_ (first touch of a model
     *  must not stall requests for models already serving); a racing
     *  duplicate build wastes one backend, the first insert wins. */
    Entry *
    entryFor(const std::string &model, std::uint32_t version,
             nn::Nonlinearity nonlin, Status &status)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) {
                status = Status::error(StatusCode::Unavailable,
                                       "client endpoint is closed");
                return nullptr;
            }
        }

        // In-memory models first (version 1 by definition; models_
        // is immutable after construction).
        for (const LocalModel &local : models_) {
            if (local.name != model)
                continue;
            if (version > 1) {
                status = Status::error(
                    StatusCode::NotFound,
                    "in-memory model '" + model + "' has no version " +
                        std::to_string(version));
                return nullptr;
            }
            const std::string key = "mem:" + model;
            if (Entry *entry = findEntry(key)) {
                status = Status::success();
                return entry;
            }
            Entry entry;
            entry.server = std::make_unique<engine::InferenceServer>(
                engine::makeBackend(backend_name_, config_,
                                    local.plans, threads_, kernel_,
                                    residency_),
                server_options_);
            entry.info.model = model;
            entry.info.version = 1;
            entry.info.input_size = entry.server->backend().inputSize();
            entry.info.output_size =
                entry.server->backend().outputSize();
            return insertEntry(key, std::move(entry), status);
        }

        if (!registry_) {
            status = Status::error(
                StatusCode::NotFound,
                "model '" + model +
                    "' not found (no in-memory model of that name "
                    "and no registry directory configured for this "
                    "local: endpoint)");
            return nullptr;
        }
        const std::shared_ptr<const serve::LoadedModel> loaded =
            registry_->load(model, version, nonlin);
        if (!loaded) {
            status = Status::error(
                StatusCode::NotFound,
                "model '" + model + "'" +
                    (version ? " version " + std::to_string(version)
                             : "") +
                    " not found in registry '" + registry_->root() +
                    "'");
            return nullptr;
        }
        const std::string key = "reg:" + model + "@" +
            std::to_string(loaded->version()) + "#" +
            std::to_string(static_cast<int>(nonlin));
        if (Entry *entry = findEntry(key)) {
            status = Status::success();
            return entry;
        }
        Entry entry;
        entry.loaded = loaded;
        entry.server = std::make_unique<engine::InferenceServer>(
            engine::makeBackend(backend_name_, config_,
                                {&loaded->plan()}, threads_, kernel_,
                                residency_),
            server_options_);
        entry.info.model = loaded->name();
        entry.info.version = loaded->version();
        entry.info.input_size = loaded->inputSize();
        entry.info.output_size = loaded->outputSize();
        return insertEntry(key, std::move(entry), status);
    }

    core::EieConfig config_;
    std::string backend_name_;
    core::kernel::KernelVariant kernel_;
    core::kernel::Residency residency_;
    unsigned threads_;
    engine::ServerOptions server_options_;
    std::vector<LocalModel> models_;
    std::unique_ptr<serve::ModelRegistry> registry_;

    std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    bool closed_ = false;
};

// ---------------------------------------------------- ClusterTransport

/** `cluster:` — an in-process ServingDirectory over the registry at
 *  the endpoint's directory; the same engine the TCP daemon fronts,
 *  minus the socket. */
class ClusterTransport final : public Transport
{
  public:
    ClusterTransport(const ParsedEndpoint &endpoint,
                     const ClientOptions &options)
        : config_(options.config),
          registry_(endpoint.dir, options.config),
          directory_(registry_,
                     clusterOptions(endpoint, options))
    {}

    Status
    info(const std::string &model, std::uint32_t version,
         ModelInfo &out) override
    {
        if (closed_.load())
            return Status::error(StatusCode::Unavailable,
                                 "client endpoint is closed");
        std::string error;
        serve::ServingDirectory::LookupStatus lookup;
        const serve::ClusterEngine *cluster = directory_.cluster(
            model, version, error, nn::Nonlinearity::ReLU, &lookup);
        if (cluster == nullptr)
            return statusFromDirectoryError(lookup,
                                            std::move(error));
        out.model = cluster->model().name();
        out.version = cluster->model().version();
        out.input_size = cluster->inputSize();
        out.output_size = cluster->outputSize();
        out.shards = cluster->shardCount();
        out.placement =
            serve::placementName(cluster->options().placement);
        return Status::success();
    }

    FrameFuture
    submitFrame(const std::string &model, std::uint32_t version,
                std::vector<std::int64_t> frame, std::int32_t priority,
                std::chrono::microseconds deadline,
                std::uint64_t trace_id) override
    {
        // The closed flag guards model lookups too: a stopped
        // directory would otherwise happily build a fresh live
        // cluster for a first-touch model.
        if (closed_.load())
            return readyFrame(Status::error(
                StatusCode::Unavailable,
                "client endpoint is closed"));
        std::string error;
        serve::ServingDirectory::LookupStatus lookup;
        serve::ClusterEngine *cluster = directory_.cluster(
            model, version, error, nn::Nonlinearity::ReLU, &lookup);
        if (cluster == nullptr)
            return readyFrame(statusFromDirectoryError(
                lookup, std::move(error)));
        if (frame.size() != cluster->inputSize())
            return readyFrame(Status::error(
                StatusCode::InvalidArgument,
                "input length " + std::to_string(frame.size()) +
                    " != model input size " +
                    std::to_string(cluster->inputSize())));
        engine::SubmitOptions submit;
        submit.priority = priority;
        submit.deadline = deadline;
        submit.trace_id = trace_id;
        return FrameFuture::ofEngine(
            cluster->submit(std::move(frame), submit));
    }

    std::unique_ptr<SessionImpl>
    openSession(const std::string &model, std::uint32_t version,
                Status &status) override
    {
        if (closed_.load()) {
            status = Status::error(StatusCode::Unavailable,
                                   "client endpoint is closed");
            return nullptr;
        }
        std::string error;
        serve::ServingDirectory::LookupStatus lookup;
        serve::ClusterEngine *cluster =
            directory_.cluster(model, version, error,
                               nn::Nonlinearity::None, &lookup);
        if (cluster == nullptr) {
            status =
                statusFromDirectoryError(lookup, std::move(error));
            return nullptr;
        }
        engine::LstmShape shape;
        if (!engine::LstmShape::derive(cluster->inputSize(),
                                       cluster->outputSize(), shape,
                                       error)) {
            status = Status::error(StatusCode::InvalidArgument,
                                   std::move(error));
            return nullptr;
        }
        status = Status::success();
        return std::make_unique<InProcessSession>(
            cluster->model().name(), config_, shape,
            [cluster](std::vector<std::int64_t> packed,
                      std::int32_t priority,
                      std::chrono::microseconds deadline,
                      std::uint64_t trace_id) {
                engine::SubmitOptions submit;
                submit.priority = priority;
                submit.deadline = deadline;
                submit.trace_id = trace_id;
                return cluster->submit(std::move(packed), submit)
                    .get();
            });
    }

    Status
    stats(EndpointStats &out) override
    {
        out = EndpointStats{};
        // Merge cluster histograms so the endpoint percentiles are
        // computed over the union of every model's samples.
        obs::HistogramSnapshot latency{};
        for (const auto &snapshot : directory_.statsSnapshot()) {
            const serve::ClusterStats &stats = snapshot.stats;
            out.requests += stats.requests;
            out.dropped_deadline += stats.dropped_deadline;
            out.requests_shed += stats.requests_shed;
            out.mean_batch += stats.mean_batch *
                static_cast<double>(stats.requests);
            latency.merge(stats.latency);
            for (const serve::ShardStats &shard : stats.shards)
                out.max_queue_depth =
                    std::max(out.max_queue_depth,
                             shard.server.max_queue_depth);
            for (const engine::LayerDispatchStats &layer :
                 serve::mergeLayerDispatch(stats.shards))
                out.layers.push_back({snapshot.model, layer.layer,
                                      layer.kernel,
                                      layer.last_act_density,
                                      layer.mean_act_density,
                                      layer.residency,
                                      layer.decoded_bytes,
                                      layer.compressed_bytes,
                                      layer.mean_decode_us});
        }
        if (out.requests > 0)
            out.mean_batch /= static_cast<double>(out.requests);
        const obs::LatencySummary summary = latency.summary();
        out.p50_latency_us = summary.p50;
        out.p95_latency_us = summary.p95;
        out.p99_latency_us = summary.p99;
        out.p999_latency_us = summary.p999;
        out.json = directory_.statsJson();
        return Status::success();
    }

    Status
    traceDump(std::string &out) override
    {
        return localTraceDump(out);
    }

    void
    close() override
    {
        closed_.store(true);
        directory_.stopAll();
    }

  private:
    static serve::ClusterOptions
    clusterOptions(const ParsedEndpoint &endpoint,
                   const ClientOptions &options)
    {
        serve::ClusterOptions cluster = options.cluster;
        if (endpoint.shards != 0)
            cluster.shards = endpoint.shards;
        if (!endpoint.placement.empty())
            cluster.placement =
                serve::placementFromName(endpoint.placement);
        if (!endpoint.cluster_backend.empty())
            cluster.backend = endpoint.cluster_backend;
        if (!endpoint.kernel.empty())
            cluster.kernel = core::kernel::kernelVariantFromName(
                endpoint.kernel);
        if (!endpoint.residency.empty())
            cluster.residency = core::kernel::residencyFromName(
                endpoint.residency);
        if (endpoint.threads != 0)
            cluster.threads_per_shard = endpoint.threads;
        cluster.server = options.server;
        return cluster;
    }

    core::EieConfig config_;
    serve::ModelRegistry registry_;
    serve::ServingDirectory directory_;
    std::atomic<bool> closed_{false};
};

// -------------------------------------------------------- TcpTransport

/** `tcp://` — a remote eie_serve daemon over the async wire client;
 *  responses correlate by id, failures arrive as wire error codes.
 *  A lost connection is re-dialed (with a fresh wire-v2 handshake)
 *  on the next call, so a bounced daemon costs the in-flight
 *  requests, not the client object. */
class TcpTransport final : public Transport
{
  public:
    /** Connecting can fail; a null return carries the Status. */
    static std::unique_ptr<TcpTransport>
    create(const ParsedEndpoint &endpoint, Status &status)
    {
        try {
            auto transport = std::unique_ptr<TcpTransport>(
                new TcpTransport(endpoint.host, endpoint.port));
            status = Status::success();
            return transport;
        } catch (const serve::wire::WireError &error) {
            status = Status::error(StatusCode::ProtocolError,
                                   error.what());
        } catch (const std::exception &error) {
            status = Status::error(StatusCode::TransportError,
                                   error.what());
        }
        return nullptr;
    }

    Status
    info(const std::string &model, std::uint32_t version,
         ModelInfo &out) override
    {
        Status status;
        const std::shared_ptr<serve::TcpClient> client =
            ensureClient(status);
        if (!client)
            return status;
        try {
            const serve::wire::InfoResponse response =
                client->info(model, version);
            if (!response.ok)
                // The daemon's only info failure is a missing model.
                return Status::error(StatusCode::NotFound,
                                     response.error);
            out.model = response.model;
            out.version = response.version;
            out.input_size = response.input_size;
            out.output_size = response.output_size;
            out.shards = response.shards;
            out.placement = response.placement;
            return Status::success();
        } catch (const serve::wire::WireError &error) {
            return Status::error(StatusCode::Unavailable,
                                 error.what());
        }
    }

    FrameFuture
    submitFrame(const std::string &model, std::uint32_t version,
                std::vector<std::int64_t> frame, std::int32_t priority,
                std::chrono::microseconds deadline,
                std::uint64_t trace_id) override
    {
        Status status;
        const std::shared_ptr<serve::TcpClient> client =
            ensureClient(status);
        if (!client)
            return readyFrame(std::move(status));
        return FrameFuture::ofWire(
            client->submitInfer(model, version, std::move(frame),
                                priority, wireDeadlineUs(deadline),
                                trace_id));
    }

    std::unique_ptr<SessionImpl>
    openSession(const std::string &model, std::uint32_t version,
                Status &status) override
    {
        const std::shared_ptr<serve::TcpClient> client =
            ensureClient(status);
        if (!client)
            return nullptr;
        const std::uint64_t session_id = client->nextSessionId();
        const serve::wire::SessionAck ack =
            client->openSession(session_id, model, version).get();
        if (!ack.ok) {
            status = statusFromWire(ack.code, ack.error);
            return nullptr;
        }
        status = Status::success();
        return std::make_unique<TcpSession>(
            client, session_id, model,
            static_cast<std::size_t>(ack.input_size),
            static_cast<std::size_t>(ack.hidden_size));
    }

    Status
    stats(EndpointStats &out) override
    {
        Status status;
        const std::shared_ptr<serve::TcpClient> client =
            ensureClient(status);
        if (!client)
            return status;
        try {
            out = EndpointStats{};
            out.json = client->stats();
            return Status::success();
        } catch (const serve::wire::WireError &error) {
            return Status::error(StatusCode::Unavailable,
                                 error.what());
        }
    }

    Status
    traceDump(std::string &out) override
    {
        Status status;
        const std::shared_ptr<serve::TcpClient> client =
            ensureClient(status);
        if (!client)
            return status;
        try {
            out = client->traceDump();
            return Status::success();
        } catch (const serve::wire::WireError &error) {
            // Also the pre-v3-server refusal: the daemon cannot
            // answer Trace frames.
            return Status::error(StatusCode::Unavailable,
                                 error.what());
        }
    }

    void
    close() override
    {
        std::shared_ptr<serve::TcpClient> client;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
            client = client_;
        }
        if (client)
            client->close();
    }

  private:
    TcpTransport(std::string host, std::uint16_t port)
        : host_(std::move(host)), port_(port),
          client_(std::make_shared<serve::TcpClient>(host_, port_))
    {}

    /**
     * The live connection, re-dialing (full wire handshake) when the
     * previous one died. Sessions opened on the old connection keep
     * their own shared_ptr; their server-side state died with the
     * daemon, so their steps report Unavailable — reconnection is
     * for stateless requests.
     */
    std::shared_ptr<serve::TcpClient>
    ensureClient(Status &status)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            status = Status::error(StatusCode::Unavailable,
                                   "client endpoint is closed");
            return nullptr;
        }
        if (client_ && client_->connected()) {
            status = Status::success();
            return client_;
        }
        try {
            client_ =
                std::make_shared<serve::TcpClient>(host_, port_);
            status = Status::success();
            return client_;
        } catch (const serve::wire::WireError &error) {
            status = Status::error(StatusCode::ProtocolError,
                                   error.what());
        } catch (const std::exception &error) {
            status = Status::error(StatusCode::TransportError,
                                   error.what());
        }
        return nullptr;
    }

    std::string host_;
    std::uint16_t port_;

    std::mutex mutex_;
    bool closed_ = false;
    std::shared_ptr<serve::TcpClient> client_;
};

// ------------------------------------------------------- HttpTransport

/** Reverse of the gateway's error-body code names (the Status the
 *  gateway mapped onto the HTTP status). */
bool
statusCodeFromName(const std::string &name, StatusCode &out)
{
    for (const StatusCode code :
         {StatusCode::Ok, StatusCode::InvalidArgument,
          StatusCode::NotFound, StatusCode::DeadlineExpired,
          StatusCode::Unavailable, StatusCode::ProtocolError,
          StatusCode::TransportError, StatusCode::Internal}) {
        if (name == statusCodeName(code)) {
            out = code;
            return true;
        }
    }
    return false;
}

/** Fallback Status class of a bare HTTP status (a peer that did not
 *  send the gateway's error body). 401/403 collapse onto
 *  InvalidArgument (the closed StatusCode set has no
 *  PermissionDenied) and 429 onto Unavailable — the same codes the
 *  gateway names in its bodies, so both paths agree. */
StatusCode
statusCodeFromHttp(int http_status)
{
    switch (http_status) {
      case 400: return StatusCode::InvalidArgument;
      case 401: return StatusCode::InvalidArgument;
      case 403: return StatusCode::InvalidArgument;
      case 404: return StatusCode::NotFound;
      case 429: return StatusCode::Unavailable;
      case 502: return StatusCode::ProtocolError;
      case 503: return StatusCode::Unavailable;
      case 504: return StatusCode::DeadlineExpired;
      default: return StatusCode::Internal;
    }
}

/**
 * The dial state shared between an HttpTransport and the sessions it
 * opened: host/port/token plus a pool of keep-alive connections (one
 * per in-flight request — HTTP/1.1 without multiplexing pipelines by
 * connection count, matching the wire client's many-in-flight
 * semantics for the bench).
 */
class HttpChannel
{
  public:
    HttpChannel(std::string host, std::uint16_t port,
                std::string token)
        : host_(std::move(host)), port_(port),
          token_(std::move(token))
    {}

    /** One JSON exchange. Returns the HTTP status and body via
     *  @p http_status / @p body; a non-Ok return is a transport-level
     *  failure (dial, send, malformed response). */
    Status
    roundTrip(const std::string &method, const std::string &target,
              const std::string &request_body, int &http_status,
              std::string &body)
    {
        std::unique_ptr<gateway::HttpClientConnection> connection;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return Status::error(StatusCode::Unavailable,
                                     "client endpoint is closed");
            if (!idle_.empty()) {
                connection = std::move(idle_.back());
                idle_.pop_back();
            }
        }
        std::vector<std::pair<std::string, std::string>> headers;
        if (!token_.empty())
            headers.emplace_back("Authorization",
                                 "Bearer " + token_);
        // One transparent retry on a dead pooled connection: the
        // gateway may have reaped it between requests, which is not
        // a request failure.
        for (int attempt = 0;; ++attempt) {
            if (!connection) {
                try {
                    connection = std::make_unique<
                        gateway::HttpClientConnection>(host_, port_);
                } catch (const std::exception &error) {
                    return Status::error(StatusCode::TransportError,
                                         error.what());
                }
            }
            try {
                const gateway::HttpParsedResponse response =
                    connection->roundTrip(method, target, headers,
                                          request_body);
                http_status = response.status;
                body = response.body;
                if (connection->alive())
                    release(std::move(connection));
                return Status::success();
            } catch (const gateway::HttpError &error) {
                connection.reset();
                if (attempt == 0)
                    continue; // dial fresh and retry once
                return Status::error(StatusCode::TransportError,
                                     error.what());
            }
        }
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        idle_.clear();
    }

  private:
    void
    release(std::unique_ptr<gateway::HttpClientConnection> connection)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Bound the pool: beyond the high-water mark of in-flight
        // requests, extra sockets buy nothing.
        if (!closed_ && idle_.size() < 16)
            idle_.push_back(std::move(connection));
    }

    const std::string host_;
    const std::uint16_t port_;
    const std::string token_;

    std::mutex mutex_;
    bool closed_ = false;
    std::vector<std::unique_ptr<gateway::HttpClientConnection>>
        idle_;
};

/** Parse a gateway response body; a non-2xx maps onto the Status
 *  taxonomy (error-body code name first, HTTP status class as the
 *  fallback). On Ok @p out is the parsed body. */
Status
gatewayStatus(int http_status, const std::string &body,
              obs::JsonValue &out)
{
    try {
        out = obs::parseJson(body);
    } catch (const std::exception &) {
        out = obs::JsonValue{};
        if (http_status / 100 == 2)
            return Status::error(
                StatusCode::ProtocolError,
                "malformed JSON in gateway response");
    }
    if (http_status / 100 == 2)
        return Status::success();
    std::string message = "HTTP " + std::to_string(http_status);
    StatusCode code = statusCodeFromHttp(http_status);
    if (const obs::JsonValue *error = out.find("error")) {
        StatusCode named;
        if (statusCodeFromName(error->stringOr("code", ""), named) &&
            named != StatusCode::Ok)
            code = named;
        const std::string detail = error->stringOr("message", "");
        if (!detail.empty())
            message += ": " + detail;
    }
    return Status::error(code, std::move(message));
}

/** A session whose recurrent state lives behind the gateway. */
class HttpSession final : public SessionImpl
{
  public:
    HttpSession(std::shared_ptr<HttpChannel> channel, std::string id,
                std::string model, std::size_t input_size,
                std::size_t hidden_size)
        : channel_(std::move(channel)), id_(std::move(id)),
          model_(std::move(model)), input_size_(input_size),
          hidden_size_(hidden_size)
    {}

    ~HttpSession() override { close(); }

    Session::StepResult
    step(const nn::Vector &x, std::int32_t priority,
         std::chrono::microseconds deadline) override
    {
        if (closed_)
            return {Status::error(StatusCode::Unavailable,
                                  "session is closed"),
                    {}};
        obs::JsonWriter request;
        request.beginObject().field("session", id_);
        request.key("x").beginArray();
        for (const float value : x)
            request.value(static_cast<double>(value));
        request.endArray()
            .field("priority", priority)
            .field("deadline_us",
                   static_cast<std::int64_t>(deadline.count()))
            .endObject();
        int http_status = 0;
        std::string body;
        Status status =
            channel_->roundTrip("POST", "/v1/session/step",
                                request.str(), http_status, body);
        if (!status.ok())
            return {std::move(status), {}};
        obs::JsonValue parsed;
        status = gatewayStatus(http_status, body, parsed);
        if (!status.ok())
            return {std::move(status), {}};
        const obs::JsonValue *h = parsed.find("h");
        if (h == nullptr || !h->isArray())
            return {Status::error(StatusCode::ProtocolError,
                                  "gateway step response without "
                                  "\"h\""),
                    {}};
        nn::Vector hidden;
        hidden.reserve(h->array.size());
        for (const obs::JsonValue &value : h->array)
            hidden.push_back(static_cast<float>(value.number));
        ++steps_;
        return {Status::success(), std::move(hidden),
                static_cast<std::uint64_t>(
                    parsed.numberOr("trace_id", 0.0))};
    }

    void
    close() override
    {
        if (closed_)
            return;
        closed_ = true;
        int http_status = 0;
        std::string body;
        channel_->roundTrip("POST", "/v1/session/close",
                            "{\"session\":\"" + id_ + "\"}",
                            http_status, body);
    }

    std::size_t inputSize() const override { return input_size_; }
    std::size_t hiddenSize() const override { return hidden_size_; }
    const std::string &model() const override { return model_; }
    std::uint64_t steps() const override { return steps_; }

  private:
    std::shared_ptr<HttpChannel> channel_;
    std::string id_;
    std::string model_;
    std::size_t input_size_;
    std::size_t hidden_size_;
    std::uint64_t steps_ = 0;
    bool closed_ = false;
};

/** `http://` — a remote eie_gateway daemon over JSON/HTTP: the
 *  multi-tenant front door (bearer auth, quotas, tiers) behind the
 *  same typed API and Status codes as the other three transports. */
class HttpTransport final : public Transport
{
  public:
    /** Dialing verifies reachability up front, like tcp://. */
    static std::unique_ptr<HttpTransport>
    create(const ParsedEndpoint &endpoint, Status &status)
    {
        try {
            gateway::HttpClientConnection probe(endpoint.host,
                                                endpoint.port);
        } catch (const std::exception &error) {
            status = Status::error(StatusCode::TransportError,
                                   error.what());
            return nullptr;
        }
        status = Status::success();
        return std::unique_ptr<HttpTransport>(
            new HttpTransport(endpoint));
    }

    Status
    info(const std::string &model, std::uint32_t version,
         ModelInfo &out) override
    {
        std::string target = "/v1/models/" + model;
        if (version != 0)
            target += "?version=" + std::to_string(version);
        int http_status = 0;
        std::string body;
        Status status = channel_->roundTrip("GET", target, "",
                                            http_status, body);
        if (!status.ok())
            return status;
        obs::JsonValue parsed;
        status = gatewayStatus(http_status, body, parsed);
        if (!status.ok())
            return status;
        out.model = parsed.stringOr("model", model);
        out.version = static_cast<std::uint32_t>(
            parsed.numberOr("version", 0.0));
        out.input_size = static_cast<std::size_t>(
            parsed.numberOr("input_size", 0.0));
        out.output_size = static_cast<std::size_t>(
            parsed.numberOr("output_size", 0.0));
        out.shards = static_cast<unsigned>(
            parsed.numberOr("shards", 1.0));
        out.placement = parsed.stringOr("placement", "replicated");
        return Status::success();
    }

    FrameFuture
    submitFrame(const std::string &model, std::uint32_t version,
                std::vector<std::int64_t> frame, std::int32_t priority,
                std::chrono::microseconds deadline,
                std::uint64_t /*trace_id*/) override
    {
        // One HTTP request per frame on its own connection: in-flight
        // frames pipeline by connection count, and a blocking round
        // trip per async task keeps the gateway's per-request
        // concurrency quota meaningful.
        obs::JsonWriter request;
        request.beginObject()
            .field("model", model)
            .field("version", std::uint64_t{version});
        request.key("frames").beginArray().beginArray();
        for (const std::int64_t value : frame)
            request.value(value);
        request.endArray().endArray();
        request
            .field("priority", priority)
            .field("deadline_us",
                   static_cast<std::int64_t>(deadline.count()))
            .endObject();
        return FrameFuture::ofAsync(std::async(
            std::launch::async,
            [channel = channel_,
             body = request.str()]() -> FrameResult {
                int http_status = 0;
                std::string response;
                Status status =
                    channel->roundTrip("POST", "/v1/infer", body,
                                       http_status, response);
                if (!status.ok())
                    return {std::move(status), {}};
                obs::JsonValue parsed;
                status = gatewayStatus(http_status, response, parsed);
                const obs::JsonValue *frames = parsed.find("frames");
                if (frames == nullptr || !frames->isArray() ||
                    frames->array.empty()) {
                    if (!status.ok())
                        return {std::move(status), {}};
                    return {Status::error(
                                StatusCode::ProtocolError,
                                "gateway infer response without "
                                "\"frames\""),
                            {}};
                }
                // The per-frame code is authoritative — it survives
                // even when the overall HTTP status was an error.
                const obs::JsonValue &first = frames->array.front();
                StatusCode code = StatusCode::Internal;
                if (!statusCodeFromName(first.stringOr("code", ""),
                                        code))
                    return {Status::error(
                                StatusCode::ProtocolError,
                                "gateway frame without a status "
                                "code"),
                            {}};
                if (code != StatusCode::Ok)
                    return {Status::error(
                                code, first.stringOr("message", "")),
                            {}};
                const obs::JsonValue *output = first.find("output");
                if (output == nullptr || !output->isArray())
                    return {Status::error(
                                StatusCode::ProtocolError,
                                "gateway frame without an output"),
                            {}};
                FrameResult result;
                result.status = Status::success();
                result.output.reserve(output->array.size());
                for (const obs::JsonValue &value : output->array)
                    result.output.push_back(
                        static_cast<std::int64_t>(value.number));
                return result;
            }));
    }

    std::unique_ptr<SessionImpl>
    openSession(const std::string &model, std::uint32_t version,
                Status &status) override
    {
        obs::JsonWriter request;
        request.beginObject()
            .field("model", model)
            .field("version", std::uint64_t{version})
            .endObject();
        int http_status = 0;
        std::string body;
        status = channel_->roundTrip("POST", "/v1/session/open",
                                     request.str(), http_status,
                                     body);
        if (!status.ok())
            return nullptr;
        obs::JsonValue parsed;
        status = gatewayStatus(http_status, body, parsed);
        if (!status.ok())
            return nullptr;
        const std::string id = parsed.stringOr("session", "");
        if (id.empty()) {
            status = Status::error(StatusCode::ProtocolError,
                                   "gateway session-open response "
                                   "without \"session\"");
            return nullptr;
        }
        status = Status::success();
        return std::make_unique<HttpSession>(
            channel_, id, parsed.stringOr("model", model),
            static_cast<std::size_t>(
                parsed.numberOr("input_size", 0.0)),
            static_cast<std::size_t>(
                parsed.numberOr("hidden_size", 0.0)));
    }

    Status
    stats(EndpointStats &out) override
    {
        int http_status = 0;
        std::string body;
        Status status = channel_->roundTrip("GET", "/v1/stats", "",
                                            http_status, body);
        if (!status.ok())
            return status;
        obs::JsonValue parsed;
        status = gatewayStatus(http_status, body, parsed);
        if (!status.ok())
            return status;
        out = EndpointStats{};
        out.json = body;
        if (const obs::JsonValue *gw = parsed.find("gateway"))
            out.requests = static_cast<std::uint64_t>(
                gw->numberOr("requests", 0.0));
        return Status::success();
    }

    Status
    traceDump(std::string &out) override
    {
        int http_status = 0;
        std::string body;
        Status status = channel_->roundTrip("GET", "/v1/trace", "",
                                            http_status, body);
        if (!status.ok())
            return status;
        obs::JsonValue parsed;
        status = gatewayStatus(http_status, body, parsed);
        if (!status.ok())
            return status;
        out = std::move(body);
        return Status::success();
    }

    void
    close() override
    {
        channel_->close();
    }

  private:
    explicit HttpTransport(const ParsedEndpoint &endpoint)
        : channel_(std::make_shared<HttpChannel>(
              endpoint.host, endpoint.port, endpoint.token))
    {}

    std::shared_ptr<HttpChannel> channel_;
};

} // namespace detail

// -------------------------------------------------------------- Session

Session::Session(std::unique_ptr<detail::SessionImpl> impl)
    : impl_(std::move(impl))
{}

Session::~Session() = default;

Session::StepResult
Session::step(const nn::Vector &x, std::int32_t priority,
              std::chrono::microseconds deadline)
{
    return impl_->step(x, priority, deadline);
}

std::size_t
Session::inputSize() const
{
    return impl_->inputSize();
}

std::size_t
Session::hiddenSize() const
{
    return impl_->hiddenSize();
}

const std::string &
Session::model() const
{
    return impl_->model();
}

std::uint64_t
Session::steps() const
{
    return impl_->steps();
}

void
Session::close()
{
    impl_->close();
}

// --------------------------------------------------------------- Client

Client::Client(std::string endpoint, TransportKind kind,
               const ClientOptions &options,
               std::unique_ptr<detail::Transport> transport)
    : endpoint_(std::move(endpoint)), kind_(kind),
      functional_(options.config), retry_(options.retry),
      transport_(std::move(transport))
{}

Client::~Client()
{
    close();
}

std::unique_ptr<Client>
Client::connect(const std::string &endpoint,
                const ClientOptions &options, Status &status)
{
    ParsedEndpoint parsed;
    status = parseEndpoint(endpoint, parsed);
    if (!status.ok())
        return nullptr;

    std::unique_ptr<detail::Transport> transport;
    switch (parsed.kind) {
      case TransportKind::Local:
        transport = std::make_unique<detail::LocalTransport>(
            parsed, options);
        break;
      case TransportKind::Cluster:
        transport = std::make_unique<detail::ClusterTransport>(
            parsed, options);
        break;
      case TransportKind::Tcp:
        transport = detail::TcpTransport::create(parsed, status);
        if (!transport)
            return nullptr;
        break;
      case TransportKind::Http:
        transport = detail::HttpTransport::create(parsed, status);
        if (!transport)
            return nullptr;
        break;
    }
    status = Status::success();
    return std::unique_ptr<Client>(
        new Client(endpoint, parsed.kind, options,
                   std::move(transport)));
}

std::unique_ptr<Client>
Client::connectOrDie(const std::string &endpoint,
                     const ClientOptions &options)
{
    Status status;
    std::unique_ptr<Client> client =
        connect(endpoint, options, status);
    fatal_if(!client, "cannot connect to '%s': %s", endpoint.c_str(),
             status.toString().c_str());
    return client;
}

const char *
Client::transport() const
{
    return transportKindName(kind_);
}

std::future<InferenceResult>
Client::submit(InferenceRequest request)
{
    // Request-level validation resolves immediately.
    const auto ready = [](Status status) {
        std::promise<InferenceResult> promise;
        InferenceResult result;
        result.status = std::move(status);
        promise.set_value(std::move(result));
        return promise.get_future();
    };
    if (!request.fixed.empty() && !request.floats.empty())
        return ready(Status::error(
            StatusCode::InvalidArgument,
            "request carries both fixed and float frames"));

    const bool use_floats = !request.floats.empty();
    std::vector<std::vector<std::int64_t>> frames;
    if (use_floats) {
        frames.reserve(request.floats.size());
        for (const nn::Vector &frame : request.floats)
            frames.push_back(functional_.quantizeInput(frame));
    } else {
        frames = std::move(request.fixed);
    }

    // Retry needs the frame bytes back for re-submission, so only
    // then do the initial submissions keep a copy.
    const bool retry_enabled =
        request.idempotent && retry_.max_attempts > 1;
    const auto overall_deadline = retry_.timeout.count() > 0
        ? std::chrono::steady_clock::now() + retry_.timeout
        : std::chrono::steady_clock::time_point::max();

    // Every frame gets its own trace id so its spans can be found in
    // traceDump(); a retried frame keeps its id, tying all attempts
    // into one timeline.
    std::vector<std::uint64_t> trace_ids;
    trace_ids.reserve(frames.size());
    std::vector<detail::FrameFuture> futures;
    futures.reserve(frames.size());
    for (std::vector<std::int64_t> &frame : frames) {
        std::vector<std::int64_t> submitted =
            retry_enabled ? frame : std::move(frame);
        trace_ids.push_back(obs::nextTraceId());
        futures.push_back(transport_->submitFrame(
            request.model, request.version, std::move(submitted),
            request.priority, request.deadline, trace_ids.back()));
    }

    // Deferred gather: waiting happens on the caller's get(). The
    // lambda owns everything it touches (FunctionalModel copies
    // share the configuration only, and the transport is co-owned
    // by shared_ptr), so the future stays valid even past the
    // Client's destruction — transports guarantee every frame
    // future resolves when they shut down.
    return std::async(
        std::launch::deferred,
        [functional = functional_, use_floats,
         futures = std::move(futures), frames = std::move(frames),
         trace_ids = std::move(trace_ids), transport = transport_,
         policy = retry_, retry_enabled, overall_deadline,
         model = std::move(request.model), version = request.version,
         priority = request.priority,
         deadline = request.deadline]() mutable {
            // One frame's outcome after waiting, including any
            // retry attempts. The overall timeout bounds waits and
            // backoffs across all attempts; on its expiry the frame
            // stays in flight server-side, but this caller stops
            // waiting for it.
            const auto resolve =
                [&](detail::FrameFuture &future,
                    std::size_t index) -> detail::FrameResult {
                for (unsigned attempt = 0;; ++attempt) {
                    if (!future.waitUntil(overall_deadline))
                        return {Status::error(
                                    StatusCode::DeadlineExpired,
                                    "client-side request timeout"),
                                {}};
                    detail::FrameResult frame = future.take();
                    if (!retry_enabled ||
                        !retryableStatus(frame.status.code) ||
                        attempt + 1 >= policy.max_attempts)
                        return frame;
                    const auto resume =
                        std::chrono::steady_clock::now() +
                        retryBackoff(policy, attempt);
                    if (resume >= overall_deadline)
                        return frame; // no budget for another try
                    std::this_thread::sleep_until(resume);
                    future = transport->submitFrame(
                        model, version, frames[index], priority,
                        deadline, trace_ids[index]);
                }
            };

            InferenceResult result;
            result.frame_status.reserve(futures.size());
            result.outputs.reserve(futures.size());
            result.trace_ids = trace_ids;
            for (std::size_t i = 0; i < futures.size(); ++i) {
                detail::FrameResult frame = resolve(futures[i], i);
                if (!frame.status.ok() && result.status.ok())
                    result.status = frame.status;
                if (use_floats)
                    result.float_outputs.push_back(
                        frame.status.ok()
                            ? functional.dequantize(frame.output)
                            : nn::Vector{});
                result.frame_status.push_back(
                    std::move(frame.status));
                result.outputs.push_back(std::move(frame.output));
            }
            return result;
        });
}

InferenceResult
Client::infer(const InferenceRequest &request)
{
    return submit(request).get();
}

InferenceResult
Client::inferRaw(const std::string &model,
                 std::vector<std::int64_t> frame)
{
    InferenceRequest request;
    request.model = model;
    request.fixed.push_back(std::move(frame));
    return infer(request);
}

InferenceResult
Client::inferFloat(const std::string &model, const nn::Vector &frame)
{
    InferenceRequest request;
    request.model = model;
    request.floats.push_back(frame);
    return infer(request);
}

Status
Client::info(const std::string &model, std::uint32_t version,
             ModelInfo &out)
{
    return transport_->info(model, version, out);
}

std::unique_ptr<Session>
Client::openSession(const std::string &model, std::uint32_t version,
                    Status &status)
{
    std::unique_ptr<detail::SessionImpl> impl =
        transport_->openSession(model, version, status);
    if (!impl)
        return nullptr;
    return std::unique_ptr<Session>(new Session(std::move(impl)));
}

Status
Client::stats(EndpointStats &out)
{
    return transport_->stats(out);
}

Status
Client::traceDump(std::string &out)
{
    return transport_->traceDump(out);
}

std::vector<std::int64_t>
Client::quantize(const nn::Vector &input) const
{
    return functional_.quantizeInput(input);
}

nn::Vector
Client::dequantize(const std::vector<std::int64_t> &raw) const
{
    return functional_.dequantize(raw);
}

void
Client::close()
{
    transport_->close();
}

} // namespace eie::client
