/**
 * @file
 * Weight-sharing codebook (the second stage of Deep Compression).
 *
 * Each surviving weight is replaced by a 4-bit index into a 16-entry
 * table of shared values (paper §III-A). Index 0 is pinned to the
 * exact value 0.0: the relative-indexed CSC format needs a genuine
 * zero to encode padding entries (runs of more than 15 zeros, §III-B),
 * so 15 entries remain for the k-means clusters of non-zero weights.
 *
 * Cluster centroids are trained with k-means using Deep Compression's
 * linear initialisation (centroids spread evenly over [min, max] of
 * the weight values).
 */

#ifndef EIE_COMPRESS_CODEBOOK_HH
#define EIE_COMPRESS_CODEBOOK_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "nn/sparse.hh"

namespace eie::compress {

/** A shared-weight table with hardware fixed-point mirror. */
class Codebook
{
  public:
    /**
     * @param values table contents; values[0] must be 0.0
     * @param fmt    hardware fixed-point format of the decoded weights
     */
    explicit Codebook(std::vector<float> values,
                      FixedFormat fmt = fixed16);

    /** Number of table entries (= 16 for the paper's configuration). */
    std::size_t size() const { return values_.size(); }

    /** Nearest-entry encoding of a non-zero weight; never returns 0. */
    std::uint8_t encode(float value) const;

    /** Float value of entry @p index. */
    float decode(std::uint8_t index) const;

    /**
     * Fixed-point raw value of entry @p index — what the hardware
     * weight decoder outputs (§IV "Arithmetic Unit": the 4-bit encoded
     * weight is "expanded to a 16-bit fixed-point number via a table
     * look up").
     */
    std::int64_t decodeRaw(std::uint8_t index) const;

    /** Hardware format of decodeRaw() values. */
    const FixedFormat &format() const { return fmt_; }

    /**
     * The materialized decode LUT: rawValues()[i] == decodeRaw(i) for
     * every table index. Execution paths (functional kernel, simulator
     * arithmetic stage, host kernels) hoist this table out of their
     * inner loops instead of calling decodeRaw() per entry.
     */
    const std::vector<std::int64_t> &rawValues() const
    {
        return raw_values_;
    }

    /** All table values. */
    const std::vector<float> &values() const { return values_; }

  private:
    std::vector<float> values_;
    std::vector<std::int64_t> raw_values_;
    FixedFormat fmt_;
};

/** Options for k-means codebook training. */
struct CodebookTrainOptions
{
    /** Total table entries including the pinned zero entry. */
    std::size_t table_size = 16;
    /** Lloyd iterations. */
    unsigned iterations = 20;
    /** Hardware fixed-point format for the decoded weights. */
    FixedFormat format = fixed16;
};

/**
 * Train a codebook on the non-zero values of @p weights: linear
 * initialisation over [min, max], then Lloyd's k-means on
 * (table_size - 1) clusters; entry 0 stays pinned at 0.0.
 */
Codebook trainCodebook(const nn::SparseMatrix &weights,
                       const CodebookTrainOptions &opts = {});

/** Train on an explicit list of (non-zero) values. */
Codebook trainCodebook(const std::vector<float> &values,
                       const CodebookTrainOptions &opts = {});

} // namespace eie::compress

#endif // EIE_COMPRESS_CODEBOOK_HH
