/**
 * @file
 * Compressed-model file format ("EIEM"): the Deep-Compression-style
 * on-disk representation of one EIE-ready layer. Weight-index and
 * zero-run streams are Huffman-coded (as Deep Compression [23]
 * prescribes for storage); the loader expands them back into the
 * 4+4-bit SRAM format.
 *
 * Layout (little-endian):
 *   magic "EIEM", version u32
 *   rows u64, cols u64, n_pe u32, index_bits u32
 *   codebook: count u32, count x f32 (bit pattern)
 *   per PE:
 *     local_rows u32, entry_count u64
 *     col_ptr: (cols+1) x u32
 *     v code lengths: 16 x u8;  z code lengths: 16 x u8
 *     v bit count u64, v bitstream (byte padded)
 *     z bit count u64, z bitstream (byte padded)
 *   fnv1a-64 checksum of everything above
 */

#ifndef EIE_COMPRESS_MODEL_FILE_HH
#define EIE_COMPRESS_MODEL_FILE_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/interleaved.hh"

namespace eie::compress {

/**
 * A model file or buffer that cannot be parsed: missing, truncated,
 * bad magic/version/checksum, or implausible structure. Thrown (not
 * fatal) so a serving process survives one bad `.eiem` under its
 * registry directory — callers map it to a typed per-request status.
 */
class ModelFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialise an encoded layer to the EIEM byte format. */
std::vector<std::uint8_t> serializeModel(const InterleavedCsc &model);

/** Parse an EIEM byte buffer; throws ModelFileError on corruption. */
InterleavedCsc deserializeModel(std::span<const std::uint8_t> bytes);

/** Write @p model to @p path (fatal on I/O failure: the writer owns
 *  the destination, so failing to write it is an operator error). */
void saveModelFile(const std::string &path, const InterleavedCsc &model);

/** Read a model from @p path; throws ModelFileError when the file is
 *  missing, unreadable or corrupt. */
InterleavedCsc loadModelFile(const std::string &path);

} // namespace eie::compress

#endif // EIE_COMPRESS_MODEL_FILE_HH
