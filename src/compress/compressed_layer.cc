#include "compress/compressed_layer.hh"

#include "compress/huffman.hh"

namespace eie::compress {

CompressedLayer::CompressedLayer(std::string name,
                                 std::unique_ptr<InterleavedCsc> storage,
                                 nn::SparseMatrix quantized)
    : name_(std::move(name)), storage_(std::move(storage)),
      quantized_(std::move(quantized))
{}

CompressedLayer
CompressedLayer::compress(std::string name,
                          const nn::SparseMatrix &weights,
                          const CompressionOptions &opts)
{
    const nn::SparseMatrix *source = &weights;
    nn::SparseMatrix pruned;
    if (opts.density >= 0.0) {
        pruned = pruneSparse(weights, opts.density);
        source = &pruned;
    }

    Codebook codebook = trainCodebook(*source, opts.codebook);
    auto storage = std::make_unique<InterleavedCsc>(*source, codebook,
                                                    opts.interleave);
    nn::SparseMatrix quantized = storage->decode();
    return CompressedLayer(std::move(name), std::move(storage),
                           std::move(quantized));
}

StorageReport
CompressedLayer::storageReport() const
{
    StorageReport report;
    report.dense_bits = static_cast<std::uint64_t>(storage_->rows()) *
        storage_->cols() * 32;
    report.spmat_bits = storage_->spmatBits();
    report.pointer_bits = storage_->pointerBits();
    report.codebook_bits = storage_->codebookBits();

    // Huffman-code the weight-index stream and the zero-run stream
    // separately, as Deep Compression does.
    std::vector<std::uint8_t> v_stream;
    std::vector<std::uint8_t> z_stream;
    for (unsigned k = 0; k < storage_->numPe(); ++k) {
        for (const CscEntry &e : storage_->pe(k).entries()) {
            v_stream.push_back(e.weight_index);
            z_stream.push_back(e.zero_count);
        }
    }
    if (!v_stream.empty()) {
        const auto v_freq = countFrequencies(v_stream);
        const auto z_freq = countFrequencies(z_stream);
        const auto v_code = HuffmanCode::fromFrequencies(v_freq);
        const auto z_code = HuffmanCode::fromFrequencies(z_freq);
        report.huffman_bits =
            v_code.encodedBits(v_freq) + z_code.encodedBits(z_freq);
    }
    return report;
}

} // namespace eie::compress
