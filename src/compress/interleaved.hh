/**
 * @file
 * The interleaved, relative-indexed, indirect-weighted CSC format of
 * §III-B/III-C and Figure 3 — the exact storage the EIE PEs walk.
 *
 * Row interleaving: with N PEs, PE k owns all rows i with
 * i mod N == k. Each PE stores its slice of every column as a stream
 * of (weight_index, zero_count) entries, 4+4 bits each:
 *
 *  - weight_index: 4-bit index into the shared codebook (index 0 is
 *    the pinned zero used for padding),
 *  - zero_count: number of zeros (in the PE's local row order)
 *    between the previous entry and this one.
 *
 * If more than 15 zeros precede a non-zero, padding entries
 * (index 0, zero_count 15) are inserted (§III-B). Padding entries are
 * real work: they occupy SRAM bandwidth and pipeline slots, which is
 * what Figure 12 measures.
 *
 * A per-PE pointer array p (16-bit in hardware) delimits the entry
 * ranges of each column; column j of a PE spans entries
 * [p[j], p[j+1]).
 */

#ifndef EIE_COMPRESS_INTERLEAVED_HH
#define EIE_COMPRESS_INTERLEAVED_HH

#include <cstdint>
#include <vector>

#include "compress/codebook.hh"
#include "nn/sparse.hh"

namespace eie::compress {

/** One stored (v, z) entry: 4-bit codebook index + 4-bit zero run. */
struct CscEntry
{
    std::uint8_t weight_index = 0; ///< 0 = padding zero
    std::uint8_t zero_count = 0;   ///< zeros preceding this entry

    bool
    operator==(const CscEntry &other) const
    {
        return weight_index == other.weight_index &&
            zero_count == other.zero_count;
    }
};

/** A decoded entry: local row within the PE plus codebook index. */
struct DecodedEntry
{
    std::uint32_t local_row = 0;
    std::uint8_t weight_index = 0;
    bool is_padding = false;
};

/**
 * A whole slice pre-decoded into flat, cache-friendly arrays with the
 * padding entries stripped: entry e of column j, for e in
 * [col_ptr[j], col_ptr[j+1]), touches local row local_rows[e] with
 * codebook index weight_indices[e]. This is the export the compiled
 * execution kernel consumes — all zero-run walking and padding
 * filtering happens once here instead of per input vector.
 */
struct DecodedSliceImage
{
    std::vector<std::uint32_t> local_rows;
    std::vector<std::uint8_t> weight_indices;
    std::vector<std::uint32_t> col_ptr; ///< cols+1 offsets
};

/** One PE's share of the interleaved matrix. */
class PeSlice
{
  public:
    PeSlice() = default;

    /**
     * Reassemble a slice from stored parts (model deserialisation).
     * Padding statistics are recomputed from the entries.
     */
    static PeSlice fromParts(std::vector<CscEntry> entries,
                             std::vector<std::uint32_t> col_ptr,
                             std::uint32_t local_rows);

    /** All (v, z) entries, columns concatenated. */
    const std::vector<CscEntry> &entries() const { return entries_; }

    /** Column pointer array, length cols+1. */
    const std::vector<std::uint32_t> &colPtr() const { return col_ptr_; }

    /** Number of local rows this PE owns. */
    std::uint32_t localRows() const { return local_rows_; }

    /** Entries (including padding) in column @p j. */
    std::size_t
    columnEntries(std::size_t j) const
    {
        return col_ptr_[j + 1] - col_ptr_[j];
    }

    /** Total entries including padding. */
    std::size_t totalEntries() const { return entries_.size(); }

    /** Padding entries only. */
    std::uint64_t paddingEntries() const { return padding_entries_; }

    /** Decode column @p j back to (local row, weight index) entries. */
    std::vector<DecodedEntry> decodeColumn(std::size_t j) const;

    /** Decode every column at once, stripping padding entries. */
    DecodedSliceImage exportDecoded() const;

    /**
     * Pack the entry stream into 64-bit SRAM words, 8 entries per
     * word, entry e at byte lane e%8, byte = (v << 4) | z. This is
     * the Spmat SRAM image (§IV "Sparse Matrix Read Unit").
     */
    std::vector<std::uint64_t> spmatWords() const;

  private:
    friend class InterleavedCsc;

    std::vector<CscEntry> entries_;
    std::vector<std::uint32_t> col_ptr_;
    std::uint32_t local_rows_ = 0;
    std::uint64_t padding_entries_ = 0;
};

/** Encoding options. */
struct InterleaveOptions
{
    /** Number of processing elements (rows interleave mod n_pe). */
    unsigned n_pe = 64;
    /** Width of the zero-count field in bits (4 in the paper). */
    unsigned index_bits = 4;
};

/** The full interleaved-CSC encoding of one weight matrix. */
class InterleavedCsc
{
  public:
    /**
     * Encode @p weights with shared values from @p codebook.
     * Non-zero weights are replaced by their nearest codebook entry.
     */
    InterleavedCsc(const nn::SparseMatrix &weights,
                   const Codebook &codebook,
                   const InterleaveOptions &opts);

    /** Reassemble from stored parts (model deserialisation). */
    static InterleavedCsc fromParts(std::size_t rows, std::size_t cols,
                                    const InterleaveOptions &opts,
                                    Codebook codebook,
                                    std::vector<PeSlice> slices);

    unsigned numPe() const { return opts_.n_pe; }
    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    const InterleaveOptions &options() const { return opts_; }

    /** PE @p k's slice. */
    const PeSlice &
    pe(unsigned k) const
    {
        panic_if(k >= slices_.size(), "PE %u out of %zu", k,
                 slices_.size());
        return slices_[k];
    }

    /** Total entries over all PEs, including padding. */
    std::uint64_t totalEntries() const;

    /** Real (non-padding) entries over all PEs (= nnz of the input). */
    std::uint64_t realEntries() const;

    /** Padding entries over all PEs. */
    std::uint64_t paddingEntries() const;

    /** realEntries / totalEntries — Figure 12's "real work" ratio. */
    double realWorkRatio() const;

    /** Spmat storage bits: 8 bits per entry. */
    std::uint64_t spmatBits() const;

    /** Pointer storage bits: 16 bits per pointer, (cols+1) per PE. */
    std::uint64_t pointerBits() const;

    /** Codebook storage bits: 16-bit value per table entry. */
    std::uint64_t codebookBits() const;

    /**
     * Reconstruct the sparse matrix with codebook-decoded values —
     * the round-trip verification path (padding entries vanish).
     */
    nn::SparseMatrix decode() const;

    /** The codebook used for encoding. */
    const Codebook &codebook() const { return codebook_; }

  private:
    InterleavedCsc(std::size_t rows, std::size_t cols,
                   const InterleaveOptions &opts, Codebook codebook);

    InterleaveOptions opts_;
    std::size_t rows_;
    std::size_t cols_;
    Codebook codebook_;
    std::vector<PeSlice> slices_;
};

} // namespace eie::compress

#endif // EIE_COMPRESS_INTERLEAVED_HH
