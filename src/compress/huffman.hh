/**
 * @file
 * Canonical Huffman codec.
 *
 * Deep Compression [23] Huffman-codes the quantised weight indices and
 * the zero-run lengths for storage; EIE itself decompresses into the
 * fixed 4+4-bit SRAM format before execution. We implement the codec
 * to reproduce Deep Compression's storage accounting (model-size
 * table) and to round-trip-test the compressed model files.
 */

#ifndef EIE_COMPRESS_HUFFMAN_HH
#define EIE_COMPRESS_HUFFMAN_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitstream.hh"

namespace eie::compress {

/** A canonical Huffman code over byte symbols. */
class HuffmanCode
{
  public:
    /**
     * Build from symbol frequencies (symbols with zero frequency get
     * no codeword). At least one symbol must have a non-zero count.
     */
    static HuffmanCode fromFrequencies(
        const std::map<std::uint8_t, std::uint64_t> &freq);

    /**
     * Rebuild a canonical code from per-symbol code lengths (0 =
     * symbol absent) — the representation model files store. A code
     * built from the lengths of fromFrequencies() decodes its
     * bitstreams identically.
     */
    static HuffmanCode fromLengths(
        const std::vector<unsigned> &lengths_by_symbol);

    /** Codeword length in bits for @p symbol (0 if absent). */
    unsigned codeLength(std::uint8_t symbol) const;

    /** Encode a symbol stream. */
    void encode(const std::vector<std::uint8_t> &symbols,
                BitWriter &writer) const;

    /** Decode @p count symbols. */
    std::vector<std::uint8_t> decode(BitReader &reader,
                                     std::size_t count) const;

    /** Total encoded size in bits for the given frequencies. */
    std::uint64_t encodedBits(
        const std::map<std::uint8_t, std::uint64_t> &freq) const;

  private:
    struct Entry
    {
        std::uint32_t code = 0; ///< canonical code, MSB-first
        unsigned length = 0;    ///< 0 = symbol absent
    };

    /** Assign canonical codes to (symbol, length) pairs. */
    static HuffmanCode canonicalize(
        std::vector<std::pair<std::uint8_t, unsigned>> lengths);

    /** Codeword table indexed by symbol. */
    std::vector<Entry> table_ = std::vector<Entry>(256);

    /** (length, code) -> symbol for decoding. */
    std::map<std::pair<unsigned, std::uint32_t>, std::uint8_t> decode_;
};

/** Frequency histogram of a byte stream. */
std::map<std::uint8_t, std::uint64_t>
countFrequencies(const std::vector<std::uint8_t> &symbols);

} // namespace eie::compress

#endif // EIE_COMPRESS_HUFFMAN_HH
