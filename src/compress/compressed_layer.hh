/**
 * @file
 * End-to-end Deep Compression of one FC layer: prune -> train codebook
 * -> interleaved CSC encode, plus the storage accounting the paper's
 * compression discussion reports (4-bit indices, 16-bit pointers,
 * optional Huffman coding of the index/run streams).
 */

#ifndef EIE_COMPRESS_COMPRESSED_LAYER_HH
#define EIE_COMPRESS_COMPRESSED_LAYER_HH

#include <memory>
#include <string>

#include "compress/codebook.hh"
#include "compress/interleaved.hh"
#include "compress/prune.hh"
#include "nn/sparse.hh"

namespace eie::compress {

/** Storage accounting for one compressed layer. */
struct StorageReport
{
    std::uint64_t dense_bits = 0;    ///< rows*cols*32 (fp32 baseline)
    std::uint64_t spmat_bits = 0;    ///< 8 bits per (v,z) entry
    std::uint64_t pointer_bits = 0;  ///< 16 bits per column pointer
    std::uint64_t codebook_bits = 0; ///< 16 bits per table entry
    std::uint64_t huffman_bits = 0;  ///< Huffman-coded v+z streams

    /** Bits of the EIE on-chip representation. */
    std::uint64_t
    cscBits() const
    {
        return spmat_bits + pointer_bits + codebook_bits;
    }

    /** Dense fp32 size over EIE CSC size. */
    double
    compressionRatio() const
    {
        return cscBits() == 0 ? 0.0
            : static_cast<double>(dense_bits) /
              static_cast<double>(cscBits());
    }

    /** Dense fp32 size over Huffman-coded file size. */
    double
    huffmanRatio() const
    {
        const std::uint64_t file =
            huffman_bits + pointer_bits + codebook_bits;
        return file == 0 ? 0.0
            : static_cast<double>(dense_bits) / static_cast<double>(file);
    }
};

/** Pipeline knobs. */
struct CompressionOptions
{
    /** Target weight density; < 0 means "keep the matrix as given"
     *  (already-pruned input, the common case for Table III). */
    double density = -1.0;
    CodebookTrainOptions codebook;
    InterleaveOptions interleave;
};

/** A fully compressed FC layer ready to load into the accelerator. */
class CompressedLayer
{
  public:
    /** Run the pipeline on @p weights. */
    static CompressedLayer compress(std::string name,
                                    const nn::SparseMatrix &weights,
                                    const CompressionOptions &opts);

    const std::string &name() const { return name_; }

    /** The interleaved CSC image (per-PE SRAM contents). */
    const InterleavedCsc &storage() const { return *storage_; }

    /** Shared-weight table. */
    const Codebook &codebook() const { return storage_->codebook(); }

    /**
     * The weights the accelerator effectively computes with: pruned
     * and quantised to codebook values. The golden comparison for
     * EIE outputs uses these, not the raw weights.
     */
    const nn::SparseMatrix &quantizedWeights() const { return quantized_; }

    /** Storage accounting (Huffman sizes included). */
    StorageReport storageReport() const;

    std::size_t inputSize() const { return storage_->cols(); }
    std::size_t outputSize() const { return storage_->rows(); }

  private:
    CompressedLayer(std::string name,
                    std::unique_ptr<InterleavedCsc> storage,
                    nn::SparseMatrix quantized);

    std::string name_;
    std::unique_ptr<InterleavedCsc> storage_;
    nn::SparseMatrix quantized_;
};

} // namespace eie::compress

#endif // EIE_COMPRESS_COMPRESSED_LAYER_HH
