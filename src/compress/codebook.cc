#include "compress/codebook.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace eie::compress {

Codebook::Codebook(std::vector<float> values, FixedFormat fmt)
    : values_(std::move(values)), fmt_(fmt)
{
    fatal_if(values_.empty(), "codebook must have at least one entry");
    fatal_if(values_[0] != 0.0f,
             "codebook entry 0 must be the pinned zero (got %f)",
             static_cast<double>(values_[0]));
    fatal_if(values_.size() > 256, "codebook too large (%zu entries)",
             values_.size());
    raw_values_.reserve(values_.size());
    for (float v : values_)
        raw_values_.push_back(quantize(v, fmt_));
}

std::uint8_t
Codebook::encode(float value) const
{
    // Entry 0 is reserved for padding; real weights map to the nearest
    // of entries 1..size-1.
    panic_if(values_.size() < 2, "cannot encode with a zero-only table");
    std::size_t best = 1;
    float best_dist = std::abs(value - values_[1]);
    for (std::size_t i = 2; i < values_.size(); ++i) {
        const float dist = std::abs(value - values_[i]);
        if (dist < best_dist) {
            best = i;
            best_dist = dist;
        }
    }
    return static_cast<std::uint8_t>(best);
}

float
Codebook::decode(std::uint8_t index) const
{
    panic_if(index >= values_.size(), "codebook index %u out of %zu",
             index, values_.size());
    return values_[index];
}

std::int64_t
Codebook::decodeRaw(std::uint8_t index) const
{
    panic_if(index >= raw_values_.size(), "codebook index %u out of %zu",
             index, raw_values_.size());
    return raw_values_[index];
}

Codebook
trainCodebook(const nn::SparseMatrix &weights,
              const CodebookTrainOptions &opts)
{
    std::vector<float> values;
    values.reserve(weights.nnz());
    for (std::size_t j = 0; j < weights.cols(); ++j)
        for (const auto &e : weights.column(j))
            values.push_back(e.value);
    return trainCodebook(values, opts);
}

Codebook
trainCodebook(const std::vector<float> &values,
              const CodebookTrainOptions &opts)
{
    fatal_if(opts.table_size < 2, "table size %zu too small",
             opts.table_size);
    const std::size_t k = opts.table_size - 1; // trained clusters

    if (values.empty()) {
        // Degenerate but legal: an all-zero layer.
        std::vector<float> table(opts.table_size, 0.0f);
        return Codebook(std::move(table), opts.format);
    }

    const auto [min_it, max_it] =
        std::minmax_element(values.begin(), values.end());
    const double lo = *min_it;
    const double hi = *max_it;

    // Deep Compression's linear initialisation: centroids evenly
    // spaced over the value range.
    std::vector<double> centroids(k);
    for (std::size_t c = 0; c < k; ++c) {
        centroids[c] = k == 1 ? (lo + hi) / 2.0 :
            lo + (hi - lo) * static_cast<double>(c) /
            static_cast<double>(k - 1);
    }

    std::vector<std::size_t> assignment(values.size(), 0);
    for (unsigned iter = 0; iter < opts.iterations; ++iter) {
        // Assign.
        bool changed = false;
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::size_t best = 0;
            double best_dist = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < k; ++c) {
                const double dist = std::abs(values[i] - centroids[c]);
                if (dist < best_dist) {
                    best = c;
                    best_dist = dist;
                }
            }
            if (assignment[i] != best) {
                assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Update: empty clusters keep their previous centroid.
        std::vector<double> sums(k, 0.0);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < values.size(); ++i) {
            sums[assignment[i]] += values[i];
            ++counts[assignment[i]];
        }
        for (std::size_t c = 0; c < k; ++c)
            if (counts[c] > 0)
                centroids[c] = sums[c] / static_cast<double>(counts[c]);
    }

    std::vector<float> table;
    table.reserve(opts.table_size);
    table.push_back(0.0f); // pinned padding-zero entry
    for (double c : centroids)
        table.push_back(static_cast<float>(c));
    return Codebook(std::move(table), opts.format);
}

} // namespace eie::compress
