#include "compress/interleaved.hh"

#include <algorithm>

#include "common/bits.hh"

namespace eie::compress {

std::vector<DecodedEntry>
PeSlice::decodeColumn(std::size_t j) const
{
    panic_if(j + 1 >= col_ptr_.size(), "column %zu out of %zu", j,
             col_ptr_.size() - 1);
    std::vector<DecodedEntry> decoded;
    std::int64_t pos = -1;
    for (std::uint32_t e = col_ptr_[j]; e < col_ptr_[j + 1]; ++e) {
        const CscEntry &entry = entries_[e];
        pos += entry.zero_count + 1;
        DecodedEntry d;
        d.local_row = static_cast<std::uint32_t>(pos);
        d.weight_index = entry.weight_index;
        d.is_padding = entry.weight_index == 0;
        decoded.push_back(d);
    }
    return decoded;
}

DecodedSliceImage
PeSlice::exportDecoded() const
{
    DecodedSliceImage image;
    image.local_rows.reserve(entries_.size() - padding_entries_);
    image.weight_indices.reserve(entries_.size() - padding_entries_);
    image.col_ptr.reserve(col_ptr_.size());
    image.col_ptr.push_back(0);

    for (std::size_t j = 0; j + 1 < col_ptr_.size(); ++j) {
        std::int64_t pos = -1;
        for (std::uint32_t e = col_ptr_[j]; e < col_ptr_[j + 1]; ++e) {
            const CscEntry &entry = entries_[e];
            pos += entry.zero_count + 1;
            if (entry.weight_index == 0)
                continue; // padding carries no value; keep only the run
            image.local_rows.push_back(static_cast<std::uint32_t>(pos));
            image.weight_indices.push_back(entry.weight_index);
        }
        image.col_ptr.push_back(
            static_cast<std::uint32_t>(image.local_rows.size()));
    }
    return image;
}

PeSlice
PeSlice::fromParts(std::vector<CscEntry> entries,
                   std::vector<std::uint32_t> col_ptr,
                   std::uint32_t local_rows)
{
    panic_if(col_ptr.empty() || col_ptr.front() != 0 ||
             col_ptr.back() != entries.size(),
             "column pointers inconsistent with the entry stream");
    for (std::size_t j = 1; j < col_ptr.size(); ++j)
        panic_if(col_ptr[j] < col_ptr[j - 1],
                 "column pointers must be non-decreasing");

    PeSlice slice;
    slice.entries_ = std::move(entries);
    slice.col_ptr_ = std::move(col_ptr);
    slice.local_rows_ = local_rows;
    slice.padding_entries_ = 0;
    for (const CscEntry &e : slice.entries_)
        if (e.weight_index == 0)
            ++slice.padding_entries_;
    return slice;
}

std::vector<std::uint64_t>
PeSlice::spmatWords() const
{
    std::vector<std::uint64_t> words(divCeil(entries_.size(), 8), 0);
    for (std::size_t e = 0; e < entries_.size(); ++e) {
        const std::uint64_t byte =
            (static_cast<std::uint64_t>(entries_[e].weight_index) << 4) |
            entries_[e].zero_count;
        words[e / 8] |= byte << (8 * (e % 8));
    }
    return words;
}

InterleavedCsc::InterleavedCsc(std::size_t rows, std::size_t cols,
                               const InterleaveOptions &opts,
                               Codebook codebook)
    : opts_(opts), rows_(rows), cols_(cols),
      codebook_(std::move(codebook)), slices_(opts.n_pe)
{
    fatal_if(opts_.n_pe == 0, "need at least one PE");
    fatal_if(opts_.index_bits == 0 || opts_.index_bits > 8,
             "unsupported zero-count width %u", opts_.index_bits);
    fatal_if(codebook_.size() > 16,
             "codebook has %zu entries; the 4-bit weight-index field "
             "holds at most 16", codebook_.size());
}

InterleavedCsc
InterleavedCsc::fromParts(std::size_t rows, std::size_t cols,
                          const InterleaveOptions &opts,
                          Codebook codebook,
                          std::vector<PeSlice> slices)
{
    InterleavedCsc csc(rows, cols, opts, std::move(codebook));
    fatal_if(slices.size() != opts.n_pe,
             "expected %u PE slices, got %zu", opts.n_pe,
             slices.size());
    for (unsigned k = 0; k < opts.n_pe; ++k)
        fatal_if(slices[k].colPtr().size() != cols + 1,
                 "PE %u has %zu column pointers, expected %zu", k,
                 slices[k].colPtr().size(), cols + 1);
    csc.slices_ = std::move(slices);
    return csc;
}

InterleavedCsc::InterleavedCsc(const nn::SparseMatrix &weights,
                               const Codebook &codebook,
                               const InterleaveOptions &opts)
    : InterleavedCsc(weights.rows(), weights.cols(), opts, codebook)
{

    const auto max_run =
        static_cast<std::uint32_t>(mask(opts_.index_bits));
    const unsigned n_pe = opts_.n_pe;

    for (unsigned k = 0; k < n_pe; ++k) {
        PeSlice &slice = slices_[k];
        // PE k owns rows k, k+N, ... : ceil((rows - k) / N) of them.
        slice.local_rows_ = rows_ > k
            ? static_cast<std::uint32_t>((rows_ - k + n_pe - 1) / n_pe)
            : 0;
        slice.col_ptr_.reserve(cols_ + 1);
        slice.col_ptr_.push_back(0);
    }

    for (std::size_t j = 0; j < cols_; ++j) {
        // One pass over the column, dispatching entries to their PE.
        // prev_pos[k] = local position of PE k's last emitted entry.
        std::vector<std::int64_t> prev_pos(n_pe, -1);
        for (const auto &e : weights.column(j)) {
            const unsigned k = e.row % n_pe;
            const auto local = static_cast<std::int64_t>(e.row / n_pe);
            PeSlice &slice = slices_[k];

            // Insert padding entries while the zero run exceeds the
            // encodable maximum.
            while (local - prev_pos[k] - 1 >
                   static_cast<std::int64_t>(max_run)) {
                slice.entries_.push_back(
                    {0, static_cast<std::uint8_t>(max_run)});
                ++slice.padding_entries_;
                prev_pos[k] += max_run + 1;
            }
            const auto run = static_cast<std::uint8_t>(
                local - prev_pos[k] - 1);
            slice.entries_.push_back({codebook_.encode(e.value), run});
            prev_pos[k] = local;
        }
        for (unsigned k = 0; k < n_pe; ++k)
            slices_[k].col_ptr_.push_back(
                static_cast<std::uint32_t>(slices_[k].entries_.size()));
    }

}

std::uint64_t
InterleavedCsc::totalEntries() const
{
    std::uint64_t total = 0;
    for (const PeSlice &slice : slices_)
        total += slice.totalEntries();
    return total;
}

std::uint64_t
InterleavedCsc::paddingEntries() const
{
    std::uint64_t total = 0;
    for (const PeSlice &slice : slices_)
        total += slice.paddingEntries();
    return total;
}

std::uint64_t
InterleavedCsc::realEntries() const
{
    return totalEntries() - paddingEntries();
}

double
InterleavedCsc::realWorkRatio() const
{
    const std::uint64_t total = totalEntries();
    return total == 0 ? 1.0
        : static_cast<double>(realEntries()) / static_cast<double>(total);
}

std::uint64_t
InterleavedCsc::spmatBits() const
{
    return totalEntries() * 8;
}

std::uint64_t
InterleavedCsc::pointerBits() const
{
    return static_cast<std::uint64_t>(opts_.n_pe) * (cols_ + 1) * 16;
}

std::uint64_t
InterleavedCsc::codebookBits() const
{
    return codebook_.size() * 16;
}

nn::SparseMatrix
InterleavedCsc::decode() const
{
    nn::SparseMatrix result(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j) {
        // Merge the per-PE decoded entries in global row order.
        std::vector<std::pair<std::uint32_t, float>> merged;
        for (unsigned k = 0; k < opts_.n_pe; ++k) {
            for (const DecodedEntry &d : slices_[k].decodeColumn(j)) {
                if (d.is_padding)
                    continue;
                const std::uint32_t row = d.local_row * opts_.n_pe + k;
                merged.emplace_back(row,
                                    codebook_.decode(d.weight_index));
            }
        }
        std::sort(merged.begin(), merged.end());
        for (const auto &[row, value] : merged)
            result.insert(row, j, value);
    }
    return result;
}

} // namespace eie::compress
