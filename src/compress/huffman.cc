#include "compress/huffman.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace eie::compress {

std::map<std::uint8_t, std::uint64_t>
countFrequencies(const std::vector<std::uint8_t> &symbols)
{
    std::map<std::uint8_t, std::uint64_t> freq;
    for (std::uint8_t s : symbols)
        ++freq[s];
    return freq;
}

HuffmanCode
HuffmanCode::fromFrequencies(
    const std::map<std::uint8_t, std::uint64_t> &freq)
{
    struct Node
    {
        std::uint64_t weight;
        int symbol;       // -1 for internal nodes
        int left, right;  // indices into the pool
    };

    std::vector<Node> pool;
    using QEntry = std::pair<std::uint64_t, int>; // (weight, pool index)
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> heap;

    for (const auto &[symbol, count] : freq) {
        if (count == 0)
            continue;
        pool.push_back({count, symbol, -1, -1});
        heap.emplace(count, static_cast<int>(pool.size()) - 1);
    }
    fatal_if(heap.empty(), "cannot build a Huffman code with no symbols");

    // Single-symbol streams get a 1-bit code.
    if (heap.size() == 1) {
        HuffmanCode hc;
        const auto symbol =
            static_cast<std::uint8_t>(pool[heap.top().second].symbol);
        hc.table_[symbol] = {0, 1};
        hc.decode_[{1, 0}] = symbol;
        return hc;
    }

    while (heap.size() > 1) {
        const auto [w1, n1] = heap.top(); heap.pop();
        const auto [w2, n2] = heap.top(); heap.pop();
        pool.push_back({w1 + w2, -1, n1, n2});
        heap.emplace(w1 + w2, static_cast<int>(pool.size()) - 1);
    }

    // Depth-first walk to collect code lengths.
    std::vector<std::pair<std::uint8_t, unsigned>> lengths;
    struct Frame { int node; unsigned depth; };
    std::vector<Frame> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const Node &node = pool[static_cast<std::size_t>(f.node)];
        if (node.symbol >= 0) {
            lengths.emplace_back(static_cast<std::uint8_t>(node.symbol),
                                 std::max(1u, f.depth));
        } else {
            stack.push_back({node.left, f.depth + 1});
            stack.push_back({node.right, f.depth + 1});
        }
    }
    return canonicalize(lengths);
}

HuffmanCode
HuffmanCode::fromLengths(const std::vector<unsigned> &lengths_by_symbol)
{
    fatal_if(lengths_by_symbol.size() > 256,
             "at most 256 symbols supported");
    std::vector<std::pair<std::uint8_t, unsigned>> lengths;
    for (std::size_t s = 0; s < lengths_by_symbol.size(); ++s)
        if (lengths_by_symbol[s] > 0)
            lengths.emplace_back(static_cast<std::uint8_t>(s),
                                 lengths_by_symbol[s]);
    fatal_if(lengths.empty(), "cannot build a Huffman code with no "
             "symbols");
    return canonicalize(lengths);
}

HuffmanCode
HuffmanCode::canonicalize(
    std::vector<std::pair<std::uint8_t, unsigned>> lengths)
{
    // Sort by (length, symbol) and assign sequential codes.
    std::sort(lengths.begin(), lengths.end(),
              [](const auto &a, const auto &b) {
                  return a.second != b.second ? a.second < b.second
                                              : a.first < b.first;
              });

    HuffmanCode hc;
    std::uint32_t code = 0;
    unsigned prev_len = lengths.front().second;
    for (const auto &[symbol, length] : lengths) {
        code <<= (length - prev_len);
        prev_len = length;
        hc.table_[symbol] = {code, length};
        hc.decode_[{length, code}] = symbol;
        ++code;
    }
    return hc;
}

unsigned
HuffmanCode::codeLength(std::uint8_t symbol) const
{
    return table_[symbol].length;
}

void
HuffmanCode::encode(const std::vector<std::uint8_t> &symbols,
                    BitWriter &writer) const
{
    for (std::uint8_t s : symbols) {
        const Entry &entry = table_[s];
        panic_if(entry.length == 0,
                 "symbol %u has no codeword (missing from frequencies)",
                 s);
        // Emit MSB-first so decode can extend bit by bit.
        for (unsigned bit = entry.length; bit-- > 0;)
            writer.writeBit((entry.code >> bit) & 1);
    }
}

std::vector<std::uint8_t>
HuffmanCode::decode(BitReader &reader, std::size_t count) const
{
    std::vector<std::uint8_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t code = 0;
        unsigned length = 0;
        while (true) {
            code = (code << 1) | (reader.readBit() ? 1u : 0u);
            ++length;
            panic_if(length > 32, "runaway Huffman decode");
            auto it = decode_.find({length, code});
            if (it != decode_.end()) {
                symbols.push_back(it->second);
                break;
            }
        }
    }
    return symbols;
}

std::uint64_t
HuffmanCode::encodedBits(
    const std::map<std::uint8_t, std::uint64_t> &freq) const
{
    std::uint64_t bits = 0;
    for (const auto &[symbol, count] : freq)
        bits += static_cast<std::uint64_t>(codeLength(symbol)) * count;
    return bits;
}

} // namespace eie::compress
