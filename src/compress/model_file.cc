#include "compress/model_file.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/bitstream.hh"
#include "common/faultpoint.hh"
#include "compress/huffman.hh"

namespace eie::compress {

namespace {

constexpr char magic[4] = {'E', 'I', 'E', 'M'};
constexpr std::uint32_t version = 1;

/** Throw ModelFileError with a printf-formatted message. */
[[gnu::format(printf, 1, 2)]] [[noreturn]] void
corrupt(const char *fmt, ...)
{
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throw ModelFileError(buf);
}

/** corrupt() unless the condition holds. */
#define corrupt_if(cond, ...) \
    do { \
        if (cond) \
            corrupt(__VA_ARGS__); \
    } while (0)

/** FNV-1a over a byte range. */
std::uint64_t
fnv1a(std::span<const std::uint8_t> bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::uint8_t b : bytes) {
        hash ^= b;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Little-endian byte sink. */
class ByteWriter
{
  public:
    void
    raw(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        bytes_.insert(bytes_.end(), p, p + size);
    }

    template <typename T>
    void
    scalar(T value)
    {
        raw(&value, sizeof(T));
    }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian byte source. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {}

    void
    raw(void *out, std::size_t size)
    {
        corrupt_if(size > bytes_.size() - pos_,
                   "model file truncated at offset %zu", pos_);
        if (size != 0) // empty vectors hand us a null destination
            std::memcpy(out, bytes_.data() + pos_, size);
        pos_ += size;
    }

    template <typename T>
    T
    scalar()
    {
        T value;
        raw(&value, sizeof(T));
        return value;
    }

    std::size_t position() const { return pos_; }

  private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

/** Huffman-code one nibble stream; emit lengths + bits. */
void
writeStream(ByteWriter &writer, const std::vector<std::uint8_t> &symbols)
{
    std::map<std::uint8_t, std::uint64_t> freq;
    for (std::uint8_t s : symbols)
        ++freq[s];
    // Degenerate empty stream: all-zero length table.
    if (symbols.empty()) {
        for (int s = 0; s < 16; ++s)
            writer.scalar<std::uint8_t>(0);
        writer.scalar<std::uint64_t>(0);
        return;
    }

    const auto code = HuffmanCode::fromFrequencies(freq);
    for (int s = 0; s < 16; ++s)
        writer.scalar<std::uint8_t>(static_cast<std::uint8_t>(
            code.codeLength(static_cast<std::uint8_t>(s))));

    BitWriter bits;
    code.encode(symbols, bits);
    writer.scalar<std::uint64_t>(bits.bitCount());
    writer.raw(bits.bytes().data(), bits.bytes().size());
}

/** Inverse of writeStream. */
std::vector<std::uint8_t>
readStream(ByteReader &reader, std::size_t count)
{
    std::vector<unsigned> lengths(16);
    for (int s = 0; s < 16; ++s)
        lengths[static_cast<std::size_t>(s)] =
            reader.scalar<std::uint8_t>();
    const auto bit_count = reader.scalar<std::uint64_t>();
    std::vector<std::uint8_t> stream((bit_count + 7) / 8);
    reader.raw(stream.data(), stream.size());

    if (count == 0)
        return {};
    const auto code = HuffmanCode::fromLengths(lengths);
    BitReader bits(stream, bit_count);
    return code.decode(bits, count);
}

} // namespace

std::vector<std::uint8_t>
serializeModel(const InterleavedCsc &model)
{
    ByteWriter writer;
    writer.raw(magic, sizeof(magic));
    writer.scalar<std::uint32_t>(version);
    writer.scalar<std::uint64_t>(model.rows());
    writer.scalar<std::uint64_t>(model.cols());
    writer.scalar<std::uint32_t>(model.numPe());
    writer.scalar<std::uint32_t>(model.options().index_bits);

    const auto &codebook = model.codebook();
    writer.scalar<std::uint32_t>(
        static_cast<std::uint32_t>(codebook.size()));
    for (float value : codebook.values())
        writer.scalar<float>(value);

    for (unsigned k = 0; k < model.numPe(); ++k) {
        const PeSlice &slice = model.pe(k);
        writer.scalar<std::uint32_t>(slice.localRows());
        writer.scalar<std::uint64_t>(slice.totalEntries());
        for (std::uint32_t p : slice.colPtr())
            writer.scalar<std::uint32_t>(p);

        std::vector<std::uint8_t> v_stream, z_stream;
        v_stream.reserve(slice.totalEntries());
        z_stream.reserve(slice.totalEntries());
        for (const CscEntry &e : slice.entries()) {
            v_stream.push_back(e.weight_index);
            z_stream.push_back(e.zero_count);
        }
        writeStream(writer, v_stream);
        writeStream(writer, z_stream);
    }

    const std::uint64_t checksum = fnv1a(writer.bytes());
    writer.scalar<std::uint64_t>(checksum);
    return writer.take();
}

InterleavedCsc
deserializeModel(std::span<const std::uint8_t> bytes)
{
    corrupt_if(bytes.size() < sizeof(magic) + 8,
               "model buffer too small (%zu bytes)", bytes.size());

    // Verify the trailing checksum first.
    const std::size_t payload_size = bytes.size() - 8;
    std::uint64_t stored_checksum;
    std::memcpy(&stored_checksum, bytes.data() + payload_size, 8);
    corrupt_if(fnv1a(bytes.subspan(0, payload_size)) != stored_checksum,
               "model file checksum mismatch (corrupted file?)");

    ByteReader reader(bytes.subspan(0, payload_size));
    char file_magic[4];
    reader.raw(file_magic, sizeof(file_magic));
    corrupt_if(std::memcmp(file_magic, magic, sizeof(magic)) != 0,
               "not an EIEM model file");
    const auto file_version = reader.scalar<std::uint32_t>();
    corrupt_if(file_version != version, "unsupported model version %u",
               file_version);

    const auto rows = reader.scalar<std::uint64_t>();
    const auto cols = reader.scalar<std::uint64_t>();
    InterleaveOptions opts;
    opts.n_pe = reader.scalar<std::uint32_t>();
    opts.index_bits = reader.scalar<std::uint32_t>();
    corrupt_if(opts.n_pe == 0 || opts.n_pe > 65536,
               "implausible PE count %u", opts.n_pe);

    const auto cb_size = reader.scalar<std::uint32_t>();
    corrupt_if(cb_size == 0 || cb_size > 16,
               "implausible codebook size %u", cb_size);
    std::vector<float> values(cb_size);
    for (auto &v : values)
        v = reader.scalar<float>();
    Codebook codebook(std::move(values));

    std::vector<PeSlice> slices;
    slices.reserve(opts.n_pe);
    for (unsigned k = 0; k < opts.n_pe; ++k) {
        const auto local_rows = reader.scalar<std::uint32_t>();
        const auto entry_count = reader.scalar<std::uint64_t>();
        std::vector<std::uint32_t> col_ptr(cols + 1);
        for (auto &p : col_ptr)
            p = reader.scalar<std::uint32_t>();

        const auto v_stream = readStream(reader, entry_count);
        const auto z_stream = readStream(reader, entry_count);
        std::vector<CscEntry> entries(entry_count);
        for (std::size_t e = 0; e < entry_count; ++e)
            entries[e] = {v_stream[e], z_stream[e]};
        slices.push_back(PeSlice::fromParts(
            std::move(entries), std::move(col_ptr), local_rows));
    }

    return InterleavedCsc::fromParts(rows, cols, opts,
                                     std::move(codebook),
                                     std::move(slices));
}

void
saveModelFile(const std::string &path, const InterleavedCsc &model)
{
    const auto bytes = serializeModel(model);
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot open '%s' for writing", path.c_str());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    fatal_if(!out, "failed writing '%s'", path.c_str());
}

InterleavedCsc
loadModelFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    corrupt_if(!in, "cannot open '%s' for reading", path.c_str());
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<std::uint8_t> bytes(size);
    in.read(reinterpret_cast<char *>(bytes.data()),
            static_cast<std::streamsize>(size));
    corrupt_if(!in, "failed reading '%s'", path.c_str());
    if (fault::fire("registry.truncate_read", path) &&
        bytes.size() > 8)
        bytes.resize(bytes.size() / 2);
    return deserializeModel(bytes);
}

} // namespace eie::compress
