#include "compress/prune.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace eie::compress {

namespace {

/** Collect |value| of every stored entry. */
std::vector<float>
magnitudes(const nn::SparseMatrix &sparse)
{
    std::vector<float> mags;
    mags.reserve(sparse.nnz());
    for (std::size_t j = 0; j < sparse.cols(); ++j)
        for (const auto &e : sparse.column(j))
            mags.push_back(std::abs(e.value));
    return mags;
}

/** Threshold such that entries with |w| >= threshold are kept. */
float
thresholdForCount(std::vector<float> mags, std::size_t keep)
{
    if (keep == 0)
        return std::numeric_limits<float>::infinity();
    if (keep >= mags.size())
        return 0.0f;
    std::nth_element(mags.begin(), mags.begin() + (keep - 1), mags.end(),
                     std::greater<float>());
    return mags[keep - 1];
}

} // namespace

nn::SparseMatrix
pruneDense(const nn::Matrix &dense, double density)
{
    return pruneSparse(nn::SparseMatrix::fromDense(dense), density);
}

float
pruneThreshold(const nn::SparseMatrix &sparse, double density)
{
    fatal_if(density < 0.0 || density > 1.0, "density %f out of [0,1]",
             density);
    const auto total = static_cast<double>(sparse.rows()) *
        static_cast<double>(sparse.cols());
    const auto keep = static_cast<std::size_t>(
        std::ceil(density * total));
    return thresholdForCount(magnitudes(sparse), keep);
}

nn::SparseMatrix
pruneSparse(const nn::SparseMatrix &sparse, double density)
{
    const float threshold = pruneThreshold(sparse, density);

    nn::SparseMatrix pruned(sparse.rows(), sparse.cols());
    const auto total = static_cast<double>(sparse.rows()) *
        static_cast<double>(sparse.cols());
    const auto budget = static_cast<std::size_t>(std::ceil(density * total));

    // Keep strictly-above-threshold entries unconditionally; entries
    // exactly at the threshold fill the remaining budget in storage
    // order so the kept count is exact even with ties.
    std::size_t strictly_above = 0;
    for (std::size_t j = 0; j < sparse.cols(); ++j)
        for (const auto &e : sparse.column(j))
            if (std::abs(e.value) > threshold)
                ++strictly_above;
    std::size_t at_threshold_budget =
        budget > strictly_above ? budget - strictly_above : 0;

    for (std::size_t j = 0; j < sparse.cols(); ++j) {
        for (const auto &e : sparse.column(j)) {
            const float mag = std::abs(e.value);
            if (mag > threshold) {
                pruned.insert(e.row, j, e.value);
            } else if (mag == threshold && at_threshold_budget > 0) {
                pruned.insert(e.row, j, e.value);
                --at_threshold_budget;
            }
        }
    }
    return pruned;
}

} // namespace eie::compress
