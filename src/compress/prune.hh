/**
 * @file
 * Magnitude pruning (the first stage of Deep Compression, [16][23]).
 *
 * Pruning keeps the largest-magnitude weights so that the surviving
 * fraction equals the target density. The paper's benchmark layers
 * have densities between 4% and 25% (Table III).
 */

#ifndef EIE_COMPRESS_PRUNE_HH
#define EIE_COMPRESS_PRUNE_HH

#include "nn/sparse.hh"
#include "nn/tensor.hh"

namespace eie::compress {

/**
 * Prune a dense matrix to the target density by global magnitude
 * thresholding (keep the ceil(density * size) largest |w|).
 */
nn::SparseMatrix pruneDense(const nn::Matrix &dense, double density);

/**
 * Prune an already-sparse matrix further, keeping the largest
 * ceil(density * rows * cols) magnitudes.
 */
nn::SparseMatrix pruneSparse(const nn::SparseMatrix &sparse,
                             double density);

/**
 * The global magnitude threshold that pruning to @p density would use
 * on @p sparse (for diagnostics).
 */
float pruneThreshold(const nn::SparseMatrix &sparse, double density);

} // namespace eie::compress

#endif // EIE_COMPRESS_PRUNE_HH
