#include "gateway/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace eie::gateway {

namespace {

std::string
lowered(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

/** RFC 7230 token characters (method and header names). */
bool
isTokenChar(unsigned char c)
{
    if (std::isalnum(c))
        return true;
    switch (c) {
      case '!': case '#': case '$': case '%': case '&': case '\'':
      case '*': case '+': case '-': case '.': case '^': case '_':
      case '`': case '|': case '~':
        return true;
      default:
        return false;
    }
}

bool
isToken(std::string_view text)
{
    if (text.empty() || text.size() > 32)
        return false;
    for (const char c : text)
        if (!isTokenChar(static_cast<unsigned char>(c)))
            return false;
    return true;
}

std::string_view
trimmed(std::string_view text)
{
    while (!text.empty() &&
           (text.front() == ' ' || text.front() == '\t'))
        text.remove_prefix(1);
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '\t'))
        text.remove_suffix(1);
    return text;
}

/** The head (start line + headers) of one message: everything up to
 *  and including the blank line. npos when not yet complete. */
std::size_t
findHeadEnd(std::string_view data)
{
    const std::size_t end = data.find("\r\n\r\n");
    return end == std::string_view::npos ? std::string_view::npos
                                         : end + 4;
}

/** Split the head into lines (CRLF separators; the final blank line
 *  is dropped). False on a bare CR or other framing violation. */
bool
splitHeadLines(std::string_view head,
               std::vector<std::string_view> &lines)
{
    // head ends with "\r\n\r\n"; walk CRLF-terminated lines.
    std::size_t begin = 0;
    while (begin < head.size()) {
        const std::size_t eol = head.find("\r\n", begin);
        if (eol == std::string_view::npos)
            return false;
        const std::string_view line =
            head.substr(begin, eol - begin);
        if (line.find('\r') != std::string_view::npos ||
            line.find('\n') != std::string_view::npos)
            return false;
        if (!line.empty())
            lines.push_back(line);
        begin = eol + 2;
    }
    return !lines.empty();
}

/** Parse "name: value" header lines (shared by request/response).
 *  Names are lowercased; control bytes in values are rejected. */
bool
parseHeaderLines(const std::vector<std::string_view> &lines,
                 std::size_t first,
                 std::vector<std::pair<std::string, std::string>>
                     &headers,
                 std::string &error)
{
    if (lines.size() - first > 64) {
        error = "too many headers";
        return false;
    }
    for (std::size_t i = first; i < lines.size(); ++i) {
        const std::string_view line = lines[i];
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            error = "malformed header line";
            return false;
        }
        const std::string_view name = line.substr(0, colon);
        if (!isToken(name)) {
            error = "malformed header name";
            return false;
        }
        const std::string_view value =
            trimmed(line.substr(colon + 1));
        for (const char c : value) {
            if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
                error = "control byte in header value";
                return false;
            }
        }
        headers.emplace_back(lowered(name), std::string(value));
    }
    return true;
}

const std::string *
findHeader(
    const std::vector<std::pair<std::string, std::string>> &headers,
    const std::string &name)
{
    for (const auto &[key, value] : headers)
        if (key == name)
            return &value;
    return nullptr;
}

/**
 * Resolve the body length from the parsed headers. False (with
 * @p error) on anything this helper does not speak: chunked
 * transfer coding, malformed or duplicate-conflicting
 * Content-Length, or a length over the limit.
 */
bool
bodyLength(
    const std::vector<std::pair<std::string, std::string>> &headers,
    const HttpLimits &limits, std::size_t &length, std::string &error)
{
    if (findHeader(headers, "transfer-encoding") != nullptr) {
        error = "transfer-encoding is not supported";
        return false;
    }
    length = 0;
    const std::string *value = findHeader(headers, "content-length");
    if (value == nullptr)
        return true;
    if (value->empty() || value->size() > 10 ||
        value->find_first_not_of("0123456789") != std::string::npos) {
        error = "malformed content-length";
        return false;
    }
    const unsigned long long parsed = std::stoull(*value);
    if (parsed > limits.max_body_bytes) {
        error = "body exceeds limit";
        return false;
    }
    length = static_cast<std::size_t>(parsed);
    return true;
}

/** "HTTP/1.0" or "HTTP/1.1" -> minor; -1 otherwise. */
int
parseHttpVersion(std::string_view text)
{
    if (text == "HTTP/1.1")
        return 1;
    if (text == "HTTP/1.0")
        return 0;
    return -1;
}

bool
sendAll(int fd, const char *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

// ------------------------------------------------------------- messages

const std::string *
HttpRequest::header(const std::string &name) const
{
    return findHeader(headers, name);
}

bool
HttpRequest::wantsClose() const
{
    if (const std::string *connection = header("connection"))
        return lowered(*connection).find("close") !=
            std::string::npos;
    return version_minor == 0; // HTTP/1.0 defaults to close
}

const std::string *
HttpParsedResponse::header(const std::string &name) const
{
    return findHeader(headers, name);
}

HttpParse
parseHttpRequest(std::string_view data, HttpRequest &out,
                 std::size_t &consumed, std::string &error,
                 const HttpLimits &limits)
{
    out = HttpRequest{};
    consumed = 0;
    error.clear();

    const std::size_t head_end = findHeadEnd(data);
    if (head_end == std::string_view::npos) {
        if (data.size() > limits.max_head_bytes) {
            error = "request head exceeds limit";
            return HttpParse::Bad;
        }
        return HttpParse::NeedMore;
    }
    if (head_end > limits.max_head_bytes) {
        error = "request head exceeds limit";
        return HttpParse::Bad;
    }

    std::vector<std::string_view> lines;
    if (!splitHeadLines(data.substr(0, head_end), lines)) {
        error = "malformed request head";
        return HttpParse::Bad;
    }

    // Request line: METHOD SP target SP HTTP/1.x
    const std::string_view request_line = lines.front();
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos
        ? std::string_view::npos
        : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos ||
        sp2 == std::string_view::npos ||
        request_line.find(' ', sp2 + 1) != std::string_view::npos) {
        error = "malformed request line";
        return HttpParse::Bad;
    }
    const std::string_view method = request_line.substr(0, sp1);
    const std::string_view target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const int version =
        parseHttpVersion(request_line.substr(sp2 + 1));
    if (!isToken(method)) {
        error = "malformed method";
        return HttpParse::Bad;
    }
    if (target.empty() || target.size() > 8 * 1024 ||
        target.front() != '/') {
        error = "malformed request target";
        return HttpParse::Bad;
    }
    for (const char c : target) {
        if (static_cast<unsigned char>(c) <= 0x20 ||
            static_cast<unsigned char>(c) == 0x7f) {
            error = "malformed request target";
            return HttpParse::Bad;
        }
    }
    if (version < 0) {
        error = "unsupported HTTP version";
        return HttpParse::Bad;
    }

    if (!parseHeaderLines(lines, 1, out.headers, error))
        return HttpParse::Bad;

    std::size_t body_len = 0;
    if (!bodyLength(out.headers, limits, body_len, error))
        return HttpParse::Bad;
    if (data.size() < head_end + body_len)
        return HttpParse::NeedMore;

    out.method = std::string(method);
    out.target = std::string(target);
    const std::size_t question = out.target.find('?');
    out.path = out.target.substr(0, question);
    out.query = question == std::string::npos
        ? std::string()
        : out.target.substr(question + 1);
    out.version_minor = version;
    out.body = std::string(data.substr(head_end, body_len));
    consumed = head_end + body_len;
    return HttpParse::Ok;
}

HttpParse
parseHttpResponse(std::string_view data, HttpParsedResponse &out,
                  std::size_t &consumed, std::string &error,
                  const HttpLimits &limits)
{
    out = HttpParsedResponse{};
    consumed = 0;
    error.clear();

    const std::size_t head_end = findHeadEnd(data);
    if (head_end == std::string_view::npos) {
        if (data.size() > limits.max_head_bytes) {
            error = "response head exceeds limit";
            return HttpParse::Bad;
        }
        return HttpParse::NeedMore;
    }
    if (head_end > limits.max_head_bytes) {
        error = "response head exceeds limit";
        return HttpParse::Bad;
    }

    std::vector<std::string_view> lines;
    if (!splitHeadLines(data.substr(0, head_end), lines)) {
        error = "malformed response head";
        return HttpParse::Bad;
    }

    // Status line: HTTP/1.x SP NNN [SP reason]
    const std::string_view status_line = lines.front();
    const std::size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos ||
        parseHttpVersion(status_line.substr(0, sp1)) < 0) {
        error = "malformed status line";
        return HttpParse::Bad;
    }
    const std::size_t sp2 = status_line.find(' ', sp1 + 1);
    const std::string_view code = status_line.substr(
        sp1 + 1,
        sp2 == std::string_view::npos ? std::string_view::npos
                                      : sp2 - sp1 - 1);
    if (code.size() != 3 ||
        code.find_first_not_of("0123456789") !=
            std::string_view::npos) {
        error = "malformed status code";
        return HttpParse::Bad;
    }
    out.status = (code[0] - '0') * 100 + (code[1] - '0') * 10 +
        (code[2] - '0');
    if (sp2 != std::string_view::npos)
        out.reason = std::string(status_line.substr(sp2 + 1));

    if (!parseHeaderLines(lines, 1, out.headers, error))
        return HttpParse::Bad;

    std::size_t body_len = 0;
    if (!bodyLength(out.headers, limits, body_len, error))
        return HttpParse::Bad;
    if (data.size() < head_end + body_len)
        return HttpParse::NeedMore;

    if (const std::string *connection =
            findHeader(out.headers, "connection"))
        out.close =
            lowered(*connection).find("close") != std::string::npos;
    out.body = std::string(data.substr(head_end, body_len));
    consumed = head_end + body_len;
    return HttpParse::Ok;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 401: return "Unauthorized";
      case 403: return "Forbidden";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 502: return "Bad Gateway";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      default: return "Unknown";
    }
}

std::string
renderHttpResponse(const HttpResponse &response)
{
    std::string out = "HTTP/1.1 " + std::to_string(response.status) +
        " " + httpStatusReason(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
        "\r\n";
    for (const auto &[name, value] : response.headers)
        out += name + ": " + value + "\r\n";
    out += response.close ? "Connection: close\r\n"
                          : "Connection: keep-alive\r\n";
    out += "\r\n";
    out += response.body;
    return out;
}

// ------------------------------------------------------------- listener

HttpListener::HttpListener(const Options &options, Handler handler)
    : options_(options), handler_(std::move(handler))
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error("http: socket() failed: " +
                                 std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("http: bad bind address '" +
                                 options_.bind_address + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error(
            "http: cannot bind " + options_.bind_address + ":" +
            std::to_string(options_.port) + ": " + strerror(err));
    }
    if (::listen(listen_fd_, options_.backlog) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("http: listen() failed: " +
                                 std::string(strerror(err)));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

HttpListener::~HttpListener()
{
    stop();
}

std::uint64_t
HttpListener::connectionsAccepted() const
{
    return accepted_.load(std::memory_order_relaxed);
}

void
HttpListener::stop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
        if (accept_thread_.joinable())
            accept_thread_.join();
        return;
    }
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    std::vector<std::unique_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        connections.swap(connections_);
    }
    for (auto &connection : connections) {
        if (connection->fd >= 0)
            ::shutdown(connection->fd, SHUT_RDWR);
        if (connection->thread.joinable())
            connection->thread.join();
        if (connection->fd >= 0)
            ::close(connection->fd);
    }
}

void
HttpListener::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // Listener shut down.
        }
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            return;
        }
        setNoDelay(fd);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        // Reap finished connections so a long-lived daemon under
        // connection churn does not accumulate dead threads.
        std::erase_if(
            connections_,
            [](const std::unique_ptr<Connection> &connection) {
                if (!connection->done.load(
                        std::memory_order_acquire))
                    return false;
                if (connection->thread.joinable())
                    connection->thread.join();
                if (connection->fd >= 0)
                    ::close(connection->fd);
                return true;
            });
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection &ref = *connection;
        connection->thread =
            std::thread([this, &ref] { serveConnection(ref); });
        connections_.push_back(std::move(connection));
    }
}

void
HttpListener::serveConnection(Connection &connection)
{
    std::string buffer;
    char chunk[4096];
    while (!stopping_.load(std::memory_order_acquire)) {
        HttpRequest request;
        std::size_t consumed = 0;
        std::string error;
        const HttpParse parse = parseHttpRequest(
            buffer, request, consumed, error, options_.limits);
        if (parse == HttpParse::Bad) {
            HttpResponse bad;
            bad.status = 400;
            bad.body = "{\"error\":{\"code\":\"INVALID_ARGUMENT\","
                       "\"message\":\"" +
                error + "\"}}";
            bad.close = true;
            const std::string rendered = renderHttpResponse(bad);
            sendAll(connection.fd, rendered.data(),
                    rendered.size());
            break;
        }
        if (parse == HttpParse::Ok) {
            buffer.erase(0, consumed);
            HttpResponse response;
            try {
                response = handler_(request);
            } catch (const std::exception &exception) {
                response = HttpResponse{};
                response.status = 500;
                response.body =
                    "{\"error\":{\"code\":\"INTERNAL\","
                    "\"message\":\"unhandled exception\"}}";
            }
            const bool close =
                response.close || request.wantsClose();
            response.close = close;
            const std::string rendered =
                renderHttpResponse(response);
            if (!sendAll(connection.fd, rendered.data(),
                         rendered.size()) ||
                close)
                break;
            continue;
        }
        // NeedMore: read another chunk.
        const ssize_t n =
            ::recv(connection.fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // peer closed or listener shutting down
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    ::shutdown(connection.fd, SHUT_RDWR);
    connection.done.store(true, std::memory_order_release);
}

// -------------------------------------------------------------- client

HttpClientConnection::HttpClientConnection(const std::string &host,
                                           std::uint16_t port,
                                           const HttpLimits &limits)
    : limits_(limits), host_(host)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const int rc = ::getaddrinfo(host.c_str(),
                                 std::to_string(port).c_str(),
                                 &hints, &results);
    if (rc != 0)
        throw HttpError("cannot resolve '" + host +
                        "': " + ::gai_strerror(rc));
    int fd = -1;
    for (const addrinfo *ai = results; ai != nullptr;
         ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0)
        throw HttpError("cannot connect to " + host + ":" +
                        std::to_string(port) + ": " +
                        std::strerror(errno));
    setNoDelay(fd);
    fd_ = fd;
}

HttpClientConnection::~HttpClientConnection()
{
    close();
}

void
HttpClientConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

HttpParsedResponse
HttpClientConnection::roundTrip(
    const std::string &method, const std::string &target,
    const std::vector<std::pair<std::string, std::string>> &headers,
    const std::string &body)
{
    if (fd_ < 0)
        throw HttpError("connection is closed");

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: " + host_ + "\r\n";
    request +=
        "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const auto &[name, value] : headers)
        request += name + ": " + value + "\r\n";
    request += "\r\n";
    request += body;

    if (!sendAll(fd_, request.data(), request.size())) {
        close();
        throw HttpError("connection lost while sending request");
    }

    char chunk[4096];
    for (;;) {
        HttpParsedResponse response;
        std::size_t consumed = 0;
        std::string error;
        const HttpParse parse = parseHttpResponse(
            buffer_, response, consumed, error, limits_);
        if (parse == HttpParse::Bad) {
            close();
            throw HttpError("malformed response: " + error);
        }
        if (parse == HttpParse::Ok) {
            buffer_.erase(0, consumed);
            if (response.close)
                close();
            return response;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            close();
            throw HttpError(
                "connection lost while reading response");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace eie::gateway
