/**
 * @file
 * TenantTable — the multi-tenant admission half of the HTTP gateway:
 * bearer-token authentication, per-tenant token-bucket rate limits,
 * concurrent-request quotas, and tier knobs (priority, deadline cap)
 * that the gateway maps onto the engine's
 * `SubmitOptions{priority, deadline}` and the PR 6 shed machinery.
 *
 * Configuration is a JSON document (`loadTenantConfigs` for the
 * schema), loadable from disk and hot-reloadable: `load()` swaps the
 * config under a lock while keeping each tenant's *runtime* state —
 * in-flight count, bucket level, counters — keyed by tenant name, so
 * a SIGHUP reload never resets quotas mid-flight or drops requests
 * already admitted. Tenants removed by a reload finish their
 * in-flight work through the shared_ptr they were admitted with.
 *
 * admit() takes an explicit time point so the token bucket is
 * deterministic under test (tests/gateway/test_tenants.cc drives
 * virtual time).
 */

#ifndef EIE_GATEWAY_TENANTS_HH
#define EIE_GATEWAY_TENANTS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eie::gateway {

/** One tenant's static configuration (one entry of the JSON file). */
struct TenantConfig
{
    std::string name;  ///< unique tenant id (also the metrics label)
    std::string token; ///< bearer token (unique across tenants)
    bool enabled = true; ///< disabled tenants authenticate but get 403

    /** Tier priority, mapped onto SubmitOptions::priority. Requests
     *  may self-deprioritize below this but never outrank it. */
    std::int32_t priority = 0;

    /** Token-bucket refill rate, requests/second; 0 = unlimited. */
    double rate_qps = 0.0;

    /** Bucket capacity (burst size); defaults to max(rate_qps, 1)
     *  when left 0 with a nonzero rate. */
    double burst = 0.0;

    /** Concurrent in-flight request quota; 0 = unlimited. */
    std::uint32_t max_concurrent = 0;

    /** Per-request deadline cap, microseconds; client-supplied
     *  deadlines are clamped to this. 0 = no cap. */
    std::chrono::microseconds deadline_cap{0};
};

/** A tenant's live runtime state. Shared between the table and every
 *  in-flight request admitted under it, so a hot reload that removes
 *  the tenant cannot pull state out from under running work. */
class TenantState
{
  public:
    explicit TenantState(TenantConfig config);

    const std::string &name() const { return name_; }

    /** Current config (copied under lock — reloads swap it). */
    TenantConfig config() const;

    std::uint32_t inFlight() const
    {
        return in_flight_.load(std::memory_order_relaxed);
    }

    std::uint64_t admitted() const
    {
        return admitted_.load(std::memory_order_relaxed);
    }

    std::uint64_t rejectedRate() const
    {
        return rejected_rate_.load(std::memory_order_relaxed);
    }

    std::uint64_t rejectedQuota() const
    {
        return rejected_quota_.load(std::memory_order_relaxed);
    }

    /** Current bucket level in tokens (diagnostics/stats; racy by
     *  nature, exact under quiescence). */
    double bucketLevel() const;

  private:
    friend class TenantTable;

    const std::string name_;

    mutable std::mutex mutex_; ///< guards config_ and the bucket
    TenantConfig config_;
    double bucket_tokens_ = 0.0;
    bool bucket_primed_ = false; ///< first admit fills the bucket
    std::chrono::steady_clock::time_point bucket_refilled_{};

    std::atomic<std::uint32_t> in_flight_{0};
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> rejected_rate_{0};
    std::atomic<std::uint64_t> rejected_quota_{0};
};

/** Admission outcome of one request. */
enum class Admit
{
    Ok,           ///< admitted; call release() when the request ends
    UnknownToken, ///< no tenant owns this token (HTTP 401)
    Disabled,     ///< tenant exists but is disabled (HTTP 403)
    RateLimited,  ///< token bucket empty (HTTP 429)
    OverQuota,    ///< concurrent-request quota reached (HTTP 429)
};

/** Human label of @p outcome ("ok", "unknown_token", ...). */
const char *admitName(Admit outcome);

/**
 * Parse the tenant config JSON document:
 *
 *   { "tenants": [ { "name": "acme", "token": "s3cret",
 *                    "priority": 10, "rate_qps": 100.0,
 *                    "burst": 20, "max_concurrent": 8,
 *                    "deadline_cap_us": 500000,
 *                    "enabled": true }, ... ] }
 *
 * Only "name" and "token" are required. Throws std::runtime_error on
 * malformed JSON, missing/duplicate names or tokens, or negative
 * rates.
 */
std::vector<TenantConfig> loadTenantConfigs(const std::string &json);

/**
 * The authenticated, quota-enforcing tenant directory. Thread-safe;
 * admit()/release() are the per-request hot path.
 */
class TenantTable
{
  public:
    TenantTable() = default;

    /** Replace the configuration (hot reload). Runtime state of
     *  tenants that persist (matched by name) is kept; new tenants
     *  start fresh; removed tenants drain via their shared state. */
    void load(std::vector<TenantConfig> configs);

    /** load(loadTenantConfigs(<file contents>)); returns "" on
     *  success or the failure message (the previous table stays in
     *  effect on failure — a bad reload never locks tenants out). */
    std::string loadFile(const std::string &path);

    /**
     * Admission decision for the request bearing @p token at @p now.
     * On Admit::Ok the tenant's in-flight count is incremented and
     * @p out is set — the caller must release() exactly once when the
     * request finishes. On Disabled/RateLimited/OverQuota @p out is
     * set (for per-tenant reject accounting) without an in-flight
     * hold. UnknownToken leaves @p out null.
     */
    Admit admit(std::string_view token,
                std::chrono::steady_clock::time_point now,
                std::shared_ptr<TenantState> &out);

    /** Return an Admit::Ok hold. */
    static void release(const std::shared_ptr<TenantState> &tenant);

    /** Number of configured tenants. */
    std::size_t size() const;

    /** With no tenants configured the gateway runs open (auth off);
     *  admit() is then never consulted. */
    bool empty() const { return size() == 0; }

    /** Times load()/loadFile() succeeded (reload telemetry). */
    std::uint64_t generation() const
    {
        return generation_.load(std::memory_order_relaxed);
    }

    /** Stable-ordered live states (stats endpoint / eie_top). */
    std::vector<std::shared_ptr<TenantState>> states() const;

  private:
    mutable std::mutex mutex_;
    /** Insertion-ordered (config order) live tenants. */
    std::vector<std::shared_ptr<TenantState>> tenants_;
    std::atomic<std::uint64_t> generation_{0};
};

} // namespace eie::gateway

#endif // EIE_GATEWAY_TENANTS_HH
