#include "gateway/tenants.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace eie::gateway {

TenantState::TenantState(TenantConfig config)
    : name_(config.name), config_(std::move(config))
{
}

TenantConfig
TenantState::config() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return config_;
}

double
TenantState::bucketLevel() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bucket_primed_ ? bucket_tokens_
                          : std::max(config_.burst, 1.0);
}

const char *
admitName(Admit outcome)
{
    switch (outcome) {
      case Admit::Ok: return "ok";
      case Admit::UnknownToken: return "unknown_token";
      case Admit::Disabled: return "disabled";
      case Admit::RateLimited: return "rate_limited";
      case Admit::OverQuota: return "over_quota";
    }
    return "?";
}

std::vector<TenantConfig>
loadTenantConfigs(const std::string &json)
{
    const obs::JsonValue root = obs::parseJson(json);
    if (!root.isObject())
        throw std::runtime_error(
            "tenant config: top level must be an object");
    const obs::JsonValue *list = root.find("tenants");
    if (list == nullptr || !list->isArray())
        throw std::runtime_error(
            "tenant config: missing \"tenants\" array");

    std::vector<TenantConfig> configs;
    std::set<std::string> names;
    std::set<std::string> tokens;
    for (const obs::JsonValue &entry : list->array) {
        if (!entry.isObject())
            throw std::runtime_error(
                "tenant config: tenant entries must be objects");
        TenantConfig config;
        config.name = entry.stringOr("name", "");
        config.token = entry.stringOr("token", "");
        if (config.name.empty())
            throw std::runtime_error(
                "tenant config: tenant without a \"name\"");
        if (config.token.empty())
            throw std::runtime_error("tenant config: tenant '" +
                                     config.name +
                                     "' without a \"token\"");
        if (!names.insert(config.name).second)
            throw std::runtime_error(
                "tenant config: duplicate tenant name '" +
                config.name + "'");
        if (!tokens.insert(config.token).second)
            throw std::runtime_error(
                "tenant config: duplicate token (tenant '" +
                config.name + "')");

        if (const obs::JsonValue *enabled = entry.find("enabled"))
            config.enabled = enabled->boolean;
        config.priority = static_cast<std::int32_t>(
            entry.numberOr("priority", 0.0));
        config.rate_qps = entry.numberOr("rate_qps", 0.0);
        config.burst = entry.numberOr("burst", 0.0);
        const double max_concurrent =
            entry.numberOr("max_concurrent", 0.0);
        const double deadline_cap_us =
            entry.numberOr("deadline_cap_us", 0.0);
        if (config.rate_qps < 0 || config.burst < 0 ||
            max_concurrent < 0 || deadline_cap_us < 0)
            throw std::runtime_error(
                "tenant config: negative limit on tenant '" +
                config.name + "'");
        config.max_concurrent =
            static_cast<std::uint32_t>(max_concurrent);
        config.deadline_cap = std::chrono::microseconds(
            static_cast<std::int64_t>(deadline_cap_us));
        if (config.rate_qps > 0 && config.burst == 0)
            config.burst = std::max(config.rate_qps, 1.0);
        configs.push_back(std::move(config));
    }
    return configs;
}

void
TenantTable::load(std::vector<TenantConfig> configs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::shared_ptr<TenantState>> next;
    next.reserve(configs.size());
    for (TenantConfig &config : configs) {
        std::shared_ptr<TenantState> state;
        for (const auto &existing : tenants_) {
            if (existing->name() == config.name) {
                state = existing;
                break;
            }
        }
        if (state) {
            // Keep runtime state (bucket, in-flight, counters);
            // swap in the new limits.
            std::lock_guard<std::mutex> state_lock(state->mutex_);
            state->config_ = std::move(config);
        } else {
            state = std::make_shared<TenantState>(std::move(config));
        }
        next.push_back(std::move(state));
    }
    tenants_ = std::move(next);
    generation_.fetch_add(1, std::memory_order_relaxed);
}

std::string
TenantTable::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot open tenant config '" + path + "'";
    std::ostringstream text;
    text << in.rdbuf();
    try {
        load(loadTenantConfigs(text.str()));
    } catch (const std::exception &exception) {
        return std::string(exception.what());
    }
    return "";
}

Admit
TenantTable::admit(std::string_view token,
                   std::chrono::steady_clock::time_point now,
                   std::shared_ptr<TenantState> &out)
{
    out.reset();
    std::shared_ptr<TenantState> tenant;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &candidate : tenants_) {
            // Token comparison under the table lock: configs only
            // mutate via load(), which holds the same lock.
            std::lock_guard<std::mutex> state_lock(
                candidate->mutex_);
            if (candidate->config_.token == token) {
                tenant = candidate;
                break;
            }
        }
    }
    if (!tenant)
        return Admit::UnknownToken;
    out = tenant;

    std::lock_guard<std::mutex> state_lock(tenant->mutex_);
    const TenantConfig &config = tenant->config_;
    if (!config.enabled)
        return Admit::Disabled;

    if (config.max_concurrent > 0 &&
        tenant->in_flight_.load(std::memory_order_relaxed) >=
            config.max_concurrent) {
        tenant->rejected_quota_.fetch_add(1,
                                          std::memory_order_relaxed);
        return Admit::OverQuota;
    }

    if (config.rate_qps > 0) {
        const double capacity = std::max(config.burst, 1.0);
        if (!tenant->bucket_primed_) {
            tenant->bucket_tokens_ = capacity;
            tenant->bucket_primed_ = true;
        } else {
            const double elapsed =
                std::chrono::duration<double>(
                    now - tenant->bucket_refilled_)
                    .count();
            if (elapsed > 0)
                tenant->bucket_tokens_ =
                    std::min(capacity,
                             tenant->bucket_tokens_ +
                                 elapsed * config.rate_qps);
        }
        tenant->bucket_refilled_ = now;
        if (tenant->bucket_tokens_ < 1.0) {
            tenant->rejected_rate_.fetch_add(
                1, std::memory_order_relaxed);
            return Admit::RateLimited;
        }
        tenant->bucket_tokens_ -= 1.0;
    }

    tenant->in_flight_.fetch_add(1, std::memory_order_relaxed);
    tenant->admitted_.fetch_add(1, std::memory_order_relaxed);
    return Admit::Ok;
}

void
TenantTable::release(const std::shared_ptr<TenantState> &tenant)
{
    if (tenant)
        tenant->in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t
TenantTable::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_.size();
}

std::vector<std::shared_ptr<TenantState>>
TenantTable::states() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_;
}

} // namespace eie::gateway
