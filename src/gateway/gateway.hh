/**
 * @file
 * HttpGateway — the multi-tenant HTTP/1.1 front door to the serving
 * stack. It terminates JSON-over-HTTP (infer, model info, streaming
 * sessions, stats), authenticates bearer tokens against a
 * TenantTable, enforces per-tenant token-bucket rate limits and
 * concurrency quotas, maps tenant tiers onto the engine's
 * `SubmitOptions{priority, deadline}`, and proxies to any backend a
 * `client::Client` can reach (`tcp://` daemon, in-process
 * `cluster:`/`local:`) — so the gateway gets retry, failover and the
 * Status taxonomy for free.
 *
 * HTTP surface (all bodies JSON; obs/json.hh on both sides):
 *
 *   POST /v1/infer        {"model","version"?,"frames":[[i64...]...],
 *                          "priority"?,"deadline_us"?}
 *                      -> {"code","message","frames":[{"code",
 *                          "message","output":[...],"trace_id"}...]}
 *   GET  /v1/models/NAME[?version=N]
 *                      -> {"model","version","input_size",
 *                          "output_size","shards","placement"}
 *   POST /v1/session/open  {"model","version"?}
 *                      -> {"session","input_size","hidden_size"}
 *   POST /v1/session/step  {"session","x":[f...],"priority"?,
 *                           "deadline_us"?}
 *                      -> {"code","h":[f...],"trace_id"}
 *   POST /v1/session/close {"session"}        -> {"code":"OK"}
 *   GET  /v1/stats      gateway + per-tenant + backend statistics
 *   GET  /metrics[.json | /json]  process metrics exposition
 *
 * Status ↔ HTTP mapping (README "HTTP gateway" holds the table):
 * Ok→200, InvalidArgument→400, NotFound→404, DeadlineExpired→504,
 * Unavailable→503, Protocol/TransportError→502, Internal→500;
 * gateway-local 401 (missing/unknown token), 403 (disabled tenant),
 * 429 (rate limit / concurrency quota). Every error body carries
 * {"error":{"code":"<StatusCode name>","message":...}} so the
 * `http://` client transport recovers the exact typed Status.
 *
 * Auth policy: with an empty TenantTable the gateway runs open (every
 * request is the anonymous tenant, no quotas). Once tenants are
 * configured, the /v1/ routes require `Authorization: Bearer
 * <token>`;
 * /v1/stats and /metrics stay open — the listener binds loopback by
 * default, matching the metrics port's exposure model.
 */

#ifndef EIE_GATEWAY_GATEWAY_HH
#define EIE_GATEWAY_GATEWAY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "client/client.hh"
#include "gateway/http.hh"
#include "gateway/tenants.hh"

namespace eie::obs {
class MetricsRegistry;
}

namespace eie::gateway {

/** Construction-time configuration of an HttpGateway. */
struct GatewayOptions
{
    /** HTTP listener knobs (loopback + ephemeral port default). */
    HttpListener::Options http;

    /** Backend client configuration (config/retry/cluster defaults —
     *  see client::ClientOptions). The gateway's config must match a
     *  tcp:// daemon's, exactly like any other client. */
    client::ClientOptions client;

    /** Metrics registry to record into (defaults to the process
     *  registry when null). */
    obs::MetricsRegistry *registry = nullptr;
};

/**
 * The gateway server. Construction dials the backend and binds the
 * listener; requests are served on the listener's connection threads
 * (blocking proxy calls — the backend pipelines internally).
 * Thread-safe throughout.
 */
class HttpGateway
{
  public:
    /**
     * Connect to @p backend_endpoint (client/endpoint.hh grammar)
     * and start listening. Returns nullptr with @p status set on a
     * malformed endpoint, an unreachable backend, or an unbindable
     * port; never throws.
     */
    static std::unique_ptr<HttpGateway>
    create(const std::string &backend_endpoint,
           const GatewayOptions &options, client::Status &status);

    ~HttpGateway();

    HttpGateway(const HttpGateway &) = delete;
    HttpGateway &operator=(const HttpGateway &) = delete;

    /** The bound HTTP port (resolves port 0). */
    std::uint16_t port() const { return listener_->port(); }

    /** The backend endpoint string the gateway proxies to. */
    const std::string &backend() const { return backend_endpoint_; }

    /** The tenant directory — load()/loadFile() it to (re)configure
     *  auth and quotas (the daemon's SIGHUP handler does). */
    TenantTable &tenants() { return tenants_; }

    /** Open streaming sessions held server-side for HTTP clients. */
    std::size_t openSessions() const;

    /** The gateway's /v1/stats document (tests poll it directly). */
    std::string statsJson() const;

    /** Stop the listener, close sessions and the backend client.
     *  Idempotent. */
    void stop();

  private:
    HttpGateway(const GatewayOptions &options,
                std::string backend_endpoint,
                std::unique_ptr<client::Client> backend);

    /** One server-side streaming session owned by an HTTP client. */
    struct GatewaySession
    {
        std::unique_ptr<client::Session> session;
        std::string tenant; ///< owner ("" when auth is off)
        std::mutex mutex;   ///< sessions are strictly sequential
    };

    HttpResponse handle(const HttpRequest &request);
    HttpResponse handleInfer(const HttpRequest &request,
                             const TenantConfig &tier);
    HttpResponse handleModelInfo(const HttpRequest &request);
    HttpResponse handleSessionOpen(const HttpRequest &request,
                                   const std::string &tenant);
    HttpResponse handleSessionStep(const HttpRequest &request,
                                   const std::string &tenant,
                                   const TenantConfig &tier);
    HttpResponse handleSessionClose(const HttpRequest &request,
                                    const std::string &tenant);
    HttpResponse handleStats() const;

    /** Record one finished request against @p tenant ("" = anon). */
    void recordRequest(const std::string &tenant, double latency_us);

    GatewayOptions options_;
    std::string backend_endpoint_;
    std::unique_ptr<client::Client> backend_;
    TenantTable tenants_;
    obs::MetricsRegistry *registry_;

    mutable std::mutex sessions_mutex_;
    std::map<std::string, std::shared_ptr<GatewaySession>> sessions_;
    std::atomic<std::uint64_t> next_session_{1};
    std::atomic<bool> stopped_{false};

    /** Last member: its connection threads call handle(), so it must
     *  be torn down before anything handle() touches. */
    std::unique_ptr<HttpListener> listener_;
};

} // namespace eie::gateway

#endif // EIE_GATEWAY_GATEWAY_HH
