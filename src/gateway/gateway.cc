#include "gateway/gateway.hh"

#include <algorithm>
#include <chrono>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace eie::gateway {

namespace {

using client::Status;
using client::StatusCode;

/** The one Status ↔ HTTP table (README "HTTP gateway" mirrors it). */
int
httpStatusOf(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return 200;
      case StatusCode::InvalidArgument: return 400;
      case StatusCode::NotFound: return 404;
      case StatusCode::DeadlineExpired: return 504;
      case StatusCode::Unavailable: return 503;
      case StatusCode::ProtocolError: return 502;
      case StatusCode::TransportError: return 502;
      case StatusCode::Internal: return 500;
    }
    return 500;
}

/** {"error":{"code":"<name>","message":...}} with the matching HTTP
 *  status. @p http_status overrides the table for the gateway-local
 *  codes (401/403/429 all carry client-facing Status names). */
HttpResponse
errorResponse(StatusCode code, const std::string &message,
              int http_status = 0)
{
    HttpResponse response;
    response.status =
        http_status != 0 ? http_status : httpStatusOf(code);
    obs::JsonWriter body;
    body.beginObject()
        .key("error")
        .beginObject()
        .field("code", client::statusCodeName(code))
        .field("message", message)
        .endObject()
        .endObject();
    response.body = body.str();
    return response;
}

/** Parse the request body as a JSON object; false → @p bad is the
 *  400 to return. */
bool
parseBodyObject(const HttpRequest &request, obs::JsonValue &out,
                HttpResponse &bad)
{
    try {
        out = obs::parseJson(request.body);
    } catch (const std::exception &exception) {
        bad = errorResponse(StatusCode::InvalidArgument,
                            std::string("malformed JSON body: ") +
                                exception.what());
        return false;
    }
    if (!out.isObject()) {
        bad = errorResponse(StatusCode::InvalidArgument,
                            "request body must be a JSON object");
        return false;
    }
    return true;
}

/**
 * Tier mapping: a request may self-deprioritize below its tenant's
 * tier but never outrank it, and its deadline is clamped to the
 * tenant's cap.
 */
void
applyTier(const TenantConfig &tier, std::int32_t &priority,
          std::chrono::microseconds &deadline)
{
    priority = tier.priority + std::min(priority, std::int32_t{0});
    if (tier.deadline_cap.count() > 0) {
        if (deadline.count() == 0 || deadline > tier.deadline_cap)
            deadline = tier.deadline_cap;
    }
}

/** RAII in-flight hold of one admitted request. */
struct AdmissionHold
{
    std::shared_ptr<TenantState> tenant;

    ~AdmissionHold() { TenantTable::release(tenant); }
};

} // namespace

std::unique_ptr<HttpGateway>
HttpGateway::create(const std::string &backend_endpoint,
                    const GatewayOptions &options, Status &status)
{
    std::unique_ptr<client::Client> backend = client::Client::connect(
        backend_endpoint, options.client, status);
    if (!backend)
        return nullptr;
    try {
        return std::unique_ptr<HttpGateway>(new HttpGateway(
            options, backend_endpoint, std::move(backend)));
    } catch (const std::exception &exception) {
        status = Status::error(StatusCode::Unavailable,
                               exception.what());
        return nullptr;
    }
}

HttpGateway::HttpGateway(const GatewayOptions &options,
                         std::string backend_endpoint,
                         std::unique_ptr<client::Client> backend)
    : options_(options), backend_endpoint_(std::move(backend_endpoint)),
      backend_(std::move(backend)),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::processRegistry())
{
    // Touch the aggregate handles up front so the exposition
    // surfaces show them at zero before the first request.
    registry_->counter("eie_gateway_requests_total");
    registry_->counter("eie_gateway_rejected_total");
    registry_->histogram("eie_gateway_latency_us");
    listener_ = std::make_unique<HttpListener>(
        options_.http,
        [this](const HttpRequest &request) { return handle(request); });
}

HttpGateway::~HttpGateway()
{
    stop();
}

void
HttpGateway::stop()
{
    if (stopped_.exchange(true))
        return;
    listener_->stop();
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        sessions_.clear(); // Session dtors release backend state.
    }
    backend_->close();
}

std::size_t
HttpGateway::openSessions() const
{
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    return sessions_.size();
}

void
HttpGateway::recordRequest(const std::string &tenant,
                           double latency_us)
{
    registry_->counter("eie_gateway_requests_total").add();
    registry_->histogram("eie_gateway_latency_us").record(latency_us);
    if (!tenant.empty()) {
        registry_
            ->counter("eie_gateway_requests_total_" + tenant)
            .add();
        registry_->histogram("eie_gateway_latency_us_" + tenant)
            .record(latency_us);
    }
}

HttpResponse
HttpGateway::handle(const HttpRequest &request)
{
    // Open surfaces first: exposition and stats carry no tenant data
    // a bearer token would protect, and the listener is loopback by
    // default (the same exposure model as --metrics-port).
    if (request.path == "/metrics" ||
        request.path.rfind("/metrics", 0) == 0) {
        HttpResponse response;
        if (request.path.find("json") != std::string::npos) {
            response.body = registry_->renderJson();
        } else {
            response.content_type = "text/plain; version=0.0.4";
            response.body = registry_->renderText();
        }
        return response;
    }
    if (request.path == "/v1/stats") {
        if (request.method != "GET")
            return errorResponse(StatusCode::InvalidArgument,
                                 "use GET on /v1/stats", 405);
        return handleStats();
    }

    // Everything else is the tenant-scoped API.
    std::string tenant_name;
    TenantConfig tier; // anonymous default: no quotas, priority 0
    AdmissionHold hold;
    if (!tenants_.empty()) {
        const std::string *auth = request.header("authorization");
        std::string token;
        if (auth != nullptr) {
            std::string_view value = *auth;
            static constexpr std::string_view kBearer = "Bearer ";
            if (value.size() > kBearer.size()) {
                std::string scheme(value.substr(0, kBearer.size()));
                std::transform(scheme.begin(), scheme.end(),
                               scheme.begin(), ::tolower);
                if (scheme == "bearer ")
                    token = std::string(
                        value.substr(kBearer.size()));
            }
        }
        if (token.empty()) {
            registry_->counter("eie_gateway_rejected_total").add();
            registry_
                ->counter(
                    "eie_gateway_rejected_total_unauthorized")
                .add();
            return errorResponse(
                StatusCode::InvalidArgument,
                "missing or malformed Authorization: Bearer token",
                401);
        }
        std::shared_ptr<TenantState> tenant;
        const Admit outcome = tenants_.admit(
            token, std::chrono::steady_clock::now(), tenant);
        switch (outcome) {
          case Admit::Ok:
            break;
          case Admit::UnknownToken:
            registry_->counter("eie_gateway_rejected_total").add();
            registry_
                ->counter(
                    "eie_gateway_rejected_total_unauthorized")
                .add();
            return errorResponse(StatusCode::InvalidArgument,
                                 "unknown bearer token", 401);
          case Admit::Disabled:
            registry_->counter("eie_gateway_rejected_total").add();
            registry_
                ->counter("eie_gateway_rejected_total_disabled")
                .add();
            return errorResponse(StatusCode::InvalidArgument,
                                 "tenant '" + tenant->name() +
                                     "' is disabled",
                                 403);
          case Admit::RateLimited:
            registry_->counter("eie_gateway_rejected_total").add();
            registry_
                ->counter(
                    "eie_gateway_rejected_total_rate_limited")
                .add();
            return errorResponse(StatusCode::Unavailable,
                                 "tenant '" + tenant->name() +
                                     "' is over its rate limit",
                                 429);
          case Admit::OverQuota:
            registry_->counter("eie_gateway_rejected_total").add();
            registry_
                ->counter("eie_gateway_rejected_total_over_quota")
                .add();
            return errorResponse(
                StatusCode::Unavailable,
                "tenant '" + tenant->name() +
                    "' is over its concurrency quota",
                429);
        }
        hold.tenant = tenant;
        tenant_name = tenant->name();
        tier = tenant->config();
    }

    const auto start = std::chrono::steady_clock::now();
    HttpResponse response;
    if (request.path == "/v1/infer") {
        response = request.method == "POST"
            ? handleInfer(request, tier)
            : errorResponse(StatusCode::InvalidArgument,
                            "use POST on /v1/infer", 405);
    } else if (request.path.rfind("/v1/models/", 0) == 0) {
        response = request.method == "GET"
            ? handleModelInfo(request)
            : errorResponse(StatusCode::InvalidArgument,
                            "use GET on /v1/models/<name>", 405);
    } else if (request.path == "/v1/session/open") {
        response = request.method == "POST"
            ? handleSessionOpen(request, tenant_name)
            : errorResponse(StatusCode::InvalidArgument,
                            "use POST on /v1/session/open", 405);
    } else if (request.path == "/v1/session/step") {
        response = request.method == "POST"
            ? handleSessionStep(request, tenant_name, tier)
            : errorResponse(StatusCode::InvalidArgument,
                            "use POST on /v1/session/step", 405);
    } else if (request.path == "/v1/session/close") {
        response = request.method == "POST"
            ? handleSessionClose(request, tenant_name)
            : errorResponse(StatusCode::InvalidArgument,
                            "use POST on /v1/session/close", 405);
    } else if (request.path == "/v1/trace") {
        if (request.method != "GET") {
            response = errorResponse(StatusCode::InvalidArgument,
                                     "use GET on /v1/trace", 405);
        } else {
            std::string trace;
            const Status status = backend_->traceDump(trace);
            if (status.ok()) {
                response = HttpResponse{};
                response.body = std::move(trace);
            } else {
                response =
                    errorResponse(status.code, status.message);
            }
        }
    } else {
        return errorResponse(StatusCode::NotFound,
                             "no route for '" + request.path + "'");
    }
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    recordRequest(tenant_name, latency_us);
    return response;
}

HttpResponse
HttpGateway::handleInfer(const HttpRequest &request,
                         const TenantConfig &tier)
{
    obs::JsonValue body;
    HttpResponse bad;
    if (!parseBodyObject(request, body, bad))
        return bad;

    client::InferenceRequest infer;
    infer.model = body.stringOr("model", "");
    if (infer.model.empty())
        return errorResponse(StatusCode::InvalidArgument,
                             "missing \"model\"");
    infer.version =
        static_cast<std::uint32_t>(body.numberOr("version", 0.0));
    const obs::JsonValue *frames = body.find("frames");
    if (frames == nullptr || !frames->isArray() ||
        frames->array.empty())
        return errorResponse(
            StatusCode::InvalidArgument,
            "missing \"frames\" (non-empty array of arrays)");
    for (const obs::JsonValue &frame : frames->array) {
        if (!frame.isArray())
            return errorResponse(StatusCode::InvalidArgument,
                                 "frames must be arrays of numbers");
        std::vector<std::int64_t> fixed;
        fixed.reserve(frame.array.size());
        for (const obs::JsonValue &value : frame.array) {
            if (value.kind != obs::JsonValue::Kind::Number)
                return errorResponse(
                    StatusCode::InvalidArgument,
                    "frames must be arrays of numbers");
            fixed.push_back(
                static_cast<std::int64_t>(value.number));
        }
        infer.fixed.push_back(std::move(fixed));
    }
    infer.priority =
        static_cast<std::int32_t>(body.numberOr("priority", 0.0));
    infer.deadline = std::chrono::microseconds(
        static_cast<std::int64_t>(body.numberOr("deadline_us", 0.0)));
    applyTier(tier, infer.priority, infer.deadline);

    const client::InferenceResult result = backend_->infer(infer);

    obs::JsonWriter out;
    out.beginObject()
        .field("code", client::statusCodeName(result.status.code))
        .field("message", result.status.message)
        .key("frames")
        .beginArray();
    for (std::size_t i = 0; i < result.frame_status.size(); ++i) {
        out.beginObject()
            .field("code",
                   client::statusCodeName(
                       result.frame_status[i].code))
            .field("message", result.frame_status[i].message)
            .key("output")
            .beginArray();
        if (i < result.outputs.size())
            for (const std::int64_t value : result.outputs[i])
                out.value(value);
        out.endArray();
        out.field("trace_id",
                  std::uint64_t{i < result.trace_ids.size()
                                    ? result.trace_ids[i]
                                    : 0});
        out.endObject();
    }
    out.endArray().endObject();

    HttpResponse response;
    response.status = httpStatusOf(result.status.code);
    response.body = out.str();
    return response;
}

HttpResponse
HttpGateway::handleModelInfo(const HttpRequest &request)
{
    const std::string name =
        request.path.substr(std::string("/v1/models/").size());
    if (name.empty() ||
        name.find('/') != std::string::npos)
        return errorResponse(StatusCode::InvalidArgument,
                             "use GET /v1/models/<name>");
    std::uint32_t version = 0;
    static constexpr std::string_view kVersion = "version=";
    if (request.query.rfind(kVersion, 0) == 0) {
        const std::string digits(
            request.query.substr(kVersion.size()));
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos)
            return errorResponse(StatusCode::InvalidArgument,
                                 "malformed ?version=");
        version = static_cast<std::uint32_t>(std::stoul(digits));
    } else if (!request.query.empty()) {
        return errorResponse(StatusCode::InvalidArgument,
                             "unknown query parameter");
    }

    client::ModelInfo info;
    const Status status = backend_->info(name, version, info);
    if (!status.ok())
        return errorResponse(status.code, status.message);

    obs::JsonWriter out;
    out.beginObject()
        .field("model", info.model)
        .field("version", std::uint64_t{info.version})
        .field("input_size", std::uint64_t{info.input_size})
        .field("output_size", std::uint64_t{info.output_size})
        .field("shards", std::uint64_t{info.shards})
        .field("placement", info.placement)
        .endObject();
    HttpResponse response;
    response.body = out.str();
    return response;
}

HttpResponse
HttpGateway::handleSessionOpen(const HttpRequest &request,
                               const std::string &tenant)
{
    obs::JsonValue body;
    HttpResponse bad;
    if (!parseBodyObject(request, body, bad))
        return bad;
    const std::string model = body.stringOr("model", "");
    if (model.empty())
        return errorResponse(StatusCode::InvalidArgument,
                             "missing \"model\"");
    const std::uint32_t version =
        static_cast<std::uint32_t>(body.numberOr("version", 0.0));

    Status status;
    std::unique_ptr<client::Session> session =
        backend_->openSession(model, version, status);
    if (!session)
        return errorResponse(status.code, status.message);

    const std::string id =
        "s" + std::to_string(next_session_.fetch_add(1));
    auto entry = std::make_shared<GatewaySession>();
    entry->session = std::move(session);
    entry->tenant = tenant;
    obs::JsonWriter out;
    out.beginObject()
        .field("session", id)
        .field("model", entry->session->model())
        .field("input_size",
               std::uint64_t{entry->session->inputSize()})
        .field("hidden_size",
               std::uint64_t{entry->session->hiddenSize()})
        .endObject();
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        sessions_.emplace(id, std::move(entry));
    }
    HttpResponse response;
    response.body = out.str();
    return response;
}

HttpResponse
HttpGateway::handleSessionStep(const HttpRequest &request,
                               const std::string &tenant,
                               const TenantConfig &tier)
{
    obs::JsonValue body;
    HttpResponse bad;
    if (!parseBodyObject(request, body, bad))
        return bad;
    const std::string id = body.stringOr("session", "");
    std::shared_ptr<GatewaySession> entry;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        const auto it = sessions_.find(id);
        if (it != sessions_.end())
            entry = it->second;
    }
    // A foreign tenant's session id is indistinguishable from an
    // unknown one — ids must not leak across tenants.
    if (!entry || entry->tenant != tenant)
        return errorResponse(StatusCode::NotFound,
                             "unknown session '" + id + "'");

    const obs::JsonValue *x = body.find("x");
    if (x == nullptr || !x->isArray())
        return errorResponse(StatusCode::InvalidArgument,
                             "missing \"x\" (array of numbers)");
    nn::Vector input;
    input.reserve(x->array.size());
    for (const obs::JsonValue &value : x->array) {
        if (value.kind != obs::JsonValue::Kind::Number)
            return errorResponse(StatusCode::InvalidArgument,
                                 "\"x\" must be numbers");
        input.push_back(static_cast<float>(value.number));
    }
    std::int32_t priority =
        static_cast<std::int32_t>(body.numberOr("priority", 0.0));
    std::chrono::microseconds deadline(
        static_cast<std::int64_t>(body.numberOr("deadline_us", 0.0)));
    applyTier(tier, priority, deadline);

    client::Session::StepResult result;
    {
        std::lock_guard<std::mutex> lock(entry->mutex);
        result = entry->session->step(input, priority, deadline);
    }
    if (!result.ok())
        return errorResponse(result.status.code,
                             result.status.message);

    obs::JsonWriter out;
    out.beginObject()
        .field("code", client::statusCodeName(StatusCode::Ok))
        .key("h")
        .beginArray();
    for (const float value : result.h)
        out.value(static_cast<double>(value));
    out.endArray()
        .field("trace_id", std::uint64_t{result.trace_id})
        .endObject();
    HttpResponse response;
    response.body = out.str();
    return response;
}

HttpResponse
HttpGateway::handleSessionClose(const HttpRequest &request,
                                const std::string &tenant)
{
    obs::JsonValue body;
    HttpResponse bad;
    if (!parseBodyObject(request, body, bad))
        return bad;
    const std::string id = body.stringOr("session", "");
    std::shared_ptr<GatewaySession> entry;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        const auto it = sessions_.find(id);
        if (it != sessions_.end() &&
            it->second->tenant == tenant) {
            entry = it->second;
            sessions_.erase(it);
        }
    }
    if (!entry)
        return errorResponse(StatusCode::NotFound,
                             "unknown session '" + id + "'");
    {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->session->close();
    }
    HttpResponse response;
    response.body = "{\"code\":\"OK\"}";
    return response;
}

HttpResponse
HttpGateway::handleStats() const
{
    HttpResponse response;
    response.body = statsJson();
    return response;
}

std::string
HttpGateway::statsJson() const
{
    obs::JsonWriter out;
    out.beginObject();

    out.key("gateway").beginObject();
    out.field("backend", backend_endpoint_);
    out.field("requests",
              registry_->counter("eie_gateway_requests_total")
                  .value());
    out.field("rejected",
              registry_->counter("eie_gateway_rejected_total")
                  .value());
    out.field("open_sessions", std::uint64_t{openSessions()});
    out.field("tenant_generation", tenants_.generation());
    out.field("auth_enabled", !tenants_.empty());
    out.endObject();

    out.key("tenants").beginArray();
    for (const auto &tenant : tenants_.states()) {
        const TenantConfig config = tenant->config();
        out.beginObject()
            .field("name", tenant->name())
            .field("enabled", config.enabled)
            .field("priority", config.priority)
            .field("rate_qps", config.rate_qps)
            .field("burst", config.burst)
            .field("max_concurrent",
                   std::uint64_t{config.max_concurrent})
            .field("deadline_cap_us",
                   static_cast<std::int64_t>(
                       config.deadline_cap.count()))
            .field("in_flight", std::uint64_t{tenant->inFlight()})
            .field("admitted", tenant->admitted())
            .field("rejected_rate", tenant->rejectedRate())
            .field("rejected_quota", tenant->rejectedQuota())
            .field("bucket_level", tenant->bucketLevel());
        const double quota_utilization = config.max_concurrent > 0
            ? static_cast<double>(tenant->inFlight()) /
                static_cast<double>(config.max_concurrent)
            : 0.0;
        out.field("quota_utilization", quota_utilization);
        const obs::LatencySummary latency =
            registry_
                ->histogram("eie_gateway_latency_us_" +
                            tenant->name())
                .snapshot()
                .summary();
        out.key("latency_us")
            .beginObject()
            .field("count", latency.count)
            .field("mean", latency.mean)
            .field("p50", latency.p50)
            .field("p95", latency.p95)
            .field("p99", latency.p99)
            .field("p999", latency.p999)
            .field("max", latency.max)
            .endObject();
        out.endObject();
    }
    out.endArray();

    client::EndpointStats backend_stats;
    const Status status = backend_->stats(backend_stats);
    out.key("backend_stats");
    if (status.ok() && !backend_stats.json.empty())
        out.raw(backend_stats.json);
    else
        out.raw("null");

    out.endObject();
    return out.str();
}

} // namespace eie::gateway
