/**
 * @file
 * The one small HTTP/1.1 helper behind every plaintext-HTTP surface
 * in the repo: a defensive request/response parser, a blocking
 * thread-per-connection listener, and a keep-alive client
 * connection. `obs::MetricsHttpServer` (the Prometheus scrape
 * endpoint) and `gateway::HttpGateway` (the multi-tenant front door)
 * both serve through HttpListener, and the `http://` transport of
 * eie::client::Client dials through HttpClientConnection — one
 * parser, one listener, one failure model instead of hand-rolled
 * copies.
 *
 * Scope: exactly the HTTP this repo speaks. Content-Length bodies
 * only (a Transfer-Encoding header is rejected), no multipart, no
 * TLS, bounded head and body sizes. The parser is fuzzed
 * (tests/gateway/test_http.cc): arbitrary bytes must yield Ok,
 * NeedMore or Bad — never UB, never an unbounded buffer.
 *
 * This header deliberately depends on nothing but the standard
 * library and POSIX sockets so lower layers (src/obs) can include it
 * without pulling the gateway, client or serve stacks into their
 * dependency cone.
 */

#ifndef EIE_GATEWAY_HTTP_HH
#define EIE_GATEWAY_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace eie::gateway {

/** Parser bounds; exceeding either is a hard Bad, not NeedMore. */
struct HttpLimits
{
    /** Request line + headers, bytes (terminator included). */
    std::size_t max_head_bytes = 16 * 1024;

    /** Content-Length bodies above this are rejected outright. */
    std::size_t max_body_bytes = 4 * 1024 * 1024;
};

/** One parsed request (server side). Header names are lowercased. */
struct HttpRequest
{
    std::string method;  ///< verbatim token (GET, POST, ...)
    std::string target;  ///< raw request target (path?query)
    std::string path;    ///< target up to '?'
    std::string query;   ///< after '?' ("" when absent)
    int version_minor = 1; ///< HTTP/1.<minor>

    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** First header named @p name (lowercase); nullptr if absent. */
    const std::string *header(const std::string &name) const;

    /** Whether the peer asked to close after this exchange
     *  (Connection: close, or HTTP/1.0 without keep-alive). */
    bool wantsClose() const;
};

/** One response (both sides). */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
    /** Extra headers (name, value); Content-Length/Connection are
     *  emitted by the renderer. */
    std::vector<std::pair<std::string, std::string>> headers;
    /** Force connection close after this response (server side). */
    bool close = false;
};

/** Outcome of one incremental parse attempt. */
enum class HttpParse
{
    Ok,       ///< a full message was consumed
    NeedMore, ///< valid prefix; feed more bytes
    Bad,      ///< malformed or over limits; close the connection
};

/**
 * Try to parse one request from the front of @p data. On Ok,
 * @p consumed is the byte count of the parsed message (the caller
 * erases it and may parse again — pipelining/keep-alive). On Bad,
 * @p error names the violation. Never throws, never reads past
 * @p data.
 */
HttpParse parseHttpRequest(std::string_view data, HttpRequest &out,
                           std::size_t &consumed, std::string &error,
                           const HttpLimits &limits = {});

/** A parsed response (client side). */
struct HttpParsedResponse
{
    int status = 0;
    std::string reason;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool close = false; ///< server asked to close after this

    const std::string *header(const std::string &name) const;
};

/** parseHttpRequest's mirror for responses. */
HttpParse parseHttpResponse(std::string_view data,
                            HttpParsedResponse &out,
                            std::size_t &consumed, std::string &error,
                            const HttpLimits &limits = {});

/** Canonical reason phrase of @p status ("OK", "Not Found", ...). */
const char *httpStatusReason(int status);

/** Serialize @p response (HTTP/1.1, Content-Length, Connection). */
std::string renderHttpResponse(const HttpResponse &response);

/**
 * A blocking-accept HTTP/1.1 server: one accept thread, one thread
 * per connection, keep-alive until the peer closes (or sends
 * Connection: close, or a parse failure). The handler runs on the
 * connection's thread; an exception escaping it becomes a 500.
 * Malformed input gets a 400 and a closed connection — it never
 * takes the listener down.
 */
class HttpListener
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    struct Options
    {
        /** Loopback by default: exposing an HTTP inference surface
         *  beyond the host is an operator decision. */
        std::string bind_address = "127.0.0.1";
        std::uint16_t port = 0; ///< 0 = ephemeral (read via port())
        int backlog = 64;
        HttpLimits limits;
    };

    /** Bind, listen and start accepting. Throws std::runtime_error
     *  when the socket cannot be bound. */
    HttpListener(const Options &options, Handler handler);
    ~HttpListener();

    HttpListener(const HttpListener &) = delete;
    HttpListener &operator=(const HttpListener &) = delete;

    /** The bound port (resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** Close listener and all connections, join threads. Idempotent. */
    void stop();

    /** Connections accepted since construction (diagnostics). */
    std::uint64_t connectionsAccepted() const;

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConnection(Connection &connection);

    Options options_;
    Handler handler_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> accepted_{0};
    std::thread accept_thread_;

    mutable std::mutex connections_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
};

/** Transport/parse failure of an HttpClientConnection round trip. */
class HttpError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A blocking keep-alive HTTP/1.1 client connection: dial once, then
 * sequential roundTrip() calls. Not thread-safe — callers that
 * pipeline hold one connection per in-flight request (see the
 * client's HttpTransport pool). Throws HttpError on connect loss or
 * a malformed response; after a throw the connection is dead
 * (alive() false) and must be re-dialed.
 */
class HttpClientConnection
{
  public:
    /** Dial @p host:@p port; throws HttpError on failure. */
    HttpClientConnection(const std::string &host, std::uint16_t port,
                         const HttpLimits &limits = {});
    ~HttpClientConnection();

    HttpClientConnection(const HttpClientConnection &) = delete;
    HttpClientConnection &
    operator=(const HttpClientConnection &) = delete;

    /**
     * One request/response exchange. @p headers ride verbatim after
     * Host/Content-Length. Returns the parsed response (any status
     * code); throws HttpError on transport loss or response-parse
     * failure.
     */
    HttpParsedResponse
    roundTrip(const std::string &method, const std::string &target,
              const std::vector<std::pair<std::string, std::string>>
                  &headers,
              const std::string &body);

    /** Whether the socket is still usable for another roundTrip. */
    bool alive() const { return fd_ >= 0; }

    void close();

  private:
    HttpLimits limits_;
    std::string host_;
    int fd_ = -1;
    std::string buffer_; ///< bytes read past the previous response
};

} // namespace eie::gateway

#endif // EIE_GATEWAY_HTTP_HH
