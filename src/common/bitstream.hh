/**
 * @file
 * Bit-granular writer/reader used by the storage-format code: 4-bit
 * packed (v, z) sparse-matrix entries and Huffman-coded model files.
 */

#ifndef EIE_COMMON_BITSTREAM_HH
#define EIE_COMMON_BITSTREAM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace eie {

/** Append-only bit vector written LSB-first within each byte. */
class BitWriter
{
  public:
    /** Append the low @p count bits of @p value (count in [0, 64]). */
    void
    write(std::uint64_t value, unsigned count)
    {
        panic_if(count > 64, "cannot write %u bits at once", count);
        for (unsigned i = 0; i < count; ++i)
            writeBit((value >> i) & 1);
    }

    /** Append a single bit. */
    void
    writeBit(bool bit)
    {
        const unsigned offset = bit_count_ % 8;
        if (offset == 0)
            bytes_.push_back(0);
        if (bit)
            bytes_.back() |= static_cast<std::uint8_t>(1u << offset);
        ++bit_count_;
    }

    /** Total number of bits written so far. */
    std::uint64_t bitCount() const { return bit_count_; }

    /** Byte-padded backing storage. */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bit_count_ = 0;
};

/** Sequential reader over a BitWriter's output. */
class BitReader
{
  public:
    /**
     * @param bytes     backing storage (must outlive the reader)
     * @param bit_count number of valid bits in @p bytes
     */
    BitReader(const std::vector<std::uint8_t> &bytes,
              std::uint64_t bit_count)
        : bytes_(bytes), bit_count_(bit_count)
    {}

    /** Read the next @p count bits, LSB-first. */
    std::uint64_t
    read(unsigned count)
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < count; ++i)
            value |= static_cast<std::uint64_t>(readBit()) << i;
        return value;
    }

    /** Read a single bit. */
    bool
    readBit()
    {
        panic_if(pos_ >= bit_count_, "bitstream underrun at bit %llu",
                 static_cast<unsigned long long>(pos_));
        const bool bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
        ++pos_;
        return bit;
    }

    /** Bits remaining to be read. */
    std::uint64_t remaining() const { return bit_count_ - pos_; }

    /** @return true when all bits were consumed. */
    bool exhausted() const { return pos_ == bit_count_; }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::uint64_t bit_count_;
    std::uint64_t pos_ = 0;
};

} // namespace eie

#endif // EIE_COMMON_BITSTREAM_HH
