#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace eie {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "a table needs at least one column");
}

TextTable &
TextTable::row()
{
    panic_if(!rows_.empty() && rows_.back().size() != headers_.size(),
             "previous row has %zu cells, expected %zu",
             rows_.back().size(), headers_.size());
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::add(std::string cell)
{
    panic_if(rows_.empty(), "call row() before add()");
    panic_if(rows_.back().size() >= headers_.size(),
             "row already has %zu cells", headers_.size());
    rows_.back().push_back(std::move(cell));
    return *this;
}

TextTable &
TextTable::add(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return add(std::string(buf));
}

TextTable &
TextTable::add(std::int64_t value)
{
    return add(std::to_string(value));
}

TextTable &
TextTable::add(std::uint64_t value)
{
    return add(std::to_string(value));
}

TextTable &
TextTable::addRatio(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, value);
    return add(std::string(buf));
}

TextTable &
TextTable::addPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return add(std::string(buf));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << " " << cell
               << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace eie
