/**
 * @file
 * Fixed-point arithmetic used by the EIE datapath.
 *
 * EIE uses 16-bit fixed-point activations and codebook weights
 * (paper §VI, "Arithmetic Precision"): a 16b x 16b multiply produces a
 * 32-bit product that is shifted and accumulated ("shift and add" stage)
 * into a 16-bit accumulator register with saturation.
 *
 * FixedFormat describes a signed two's-complement Q-format with a total
 * width and a number of fraction bits. FixedValue is a raw integer
 * tagged with its format; helper routines quantise doubles, perform the
 * EIE multiply-accumulate, and apply ReLU, all bit-exactly so that the
 * cycle-accurate simulator and the functional model agree to the bit.
 */

#ifndef EIE_COMMON_FIXED_POINT_HH
#define EIE_COMMON_FIXED_POINT_HH

#include <cstdint>
#include <limits>

#include "common/logging.hh"

namespace eie {

/** Signed two's-complement Q-format descriptor. */
struct FixedFormat
{
    /** Total width in bits including sign (2..32). */
    unsigned totalBits = 16;
    /** Number of fraction bits (0..totalBits-1). */
    unsigned fracBits = 8;

    constexpr bool
    operator==(const FixedFormat &other) const
    {
        return totalBits == other.totalBits && fracBits == other.fracBits;
    }

    /** Largest representable raw value. */
    constexpr std::int64_t
    maxRaw() const
    {
        return (std::int64_t{1} << (totalBits - 1)) - 1;
    }

    /** Smallest (most negative) representable raw value. */
    constexpr std::int64_t
    minRaw() const
    {
        return -(std::int64_t{1} << (totalBits - 1));
    }

    /** Value of one least-significant bit. */
    constexpr double
    lsb() const
    {
        return 1.0 / static_cast<double>(std::int64_t{1} << fracBits);
    }

    /** Largest representable real value. */
    constexpr double maxValue() const { return maxRaw() * lsb(); }
    /** Smallest representable real value. */
    constexpr double minValue() const { return minRaw() * lsb(); }
};

/** The paper's default activation/weight format: Q16 with 8 fraction
 *  bits gives range [-128, 128) at 1/256 resolution, a good match for
 *  post-ReLU activation magnitudes of FC layers. */
inline constexpr FixedFormat fixed16{16, 8};

/** Saturate a wide raw value into @p fmt. */
constexpr std::int64_t
saturateRaw(std::int64_t raw, const FixedFormat &fmt)
{
    if (raw > fmt.maxRaw())
        return fmt.maxRaw();
    if (raw < fmt.minRaw())
        return fmt.minRaw();
    return raw;
}

/** Quantise a double to the nearest representable raw value
 *  (round-half-away-from-zero, then saturate). */
std::int64_t quantize(double value, const FixedFormat &fmt);

/** Convert a raw fixed-point value back to double. */
constexpr double
toDouble(std::int64_t raw, const FixedFormat &fmt)
{
    return static_cast<double>(raw) * fmt.lsb();
}

/**
 * The EIE multiply-accumulate: bx = sat(bx + w * a).
 *
 * @param acc_raw   current accumulator value in @p acc_fmt
 * @param w_raw     weight in @p operand_fmt
 * @param a_raw     activation in @p operand_fmt
 * @param operand_fmt format of w and a
 * @param acc_fmt   format of the accumulator
 * @return the saturated new accumulator raw value
 *
 * The 32-bit product carries 2*fracBits fraction bits; the "shift and
 * add" pipeline stage realigns it to the accumulator format with
 * truncation toward negative infinity (an arithmetic right shift),
 * which is what a hardware barrel shifter does.
 */
constexpr std::int64_t
macFixed(std::int64_t acc_raw, std::int64_t w_raw, std::int64_t a_raw,
         const FixedFormat &operand_fmt, const FixedFormat &acc_fmt)
{
    const std::int64_t product = w_raw * a_raw;
    const int shift = static_cast<int>(operand_fmt.fracBits) +
        static_cast<int>(operand_fmt.fracBits) -
        static_cast<int>(acc_fmt.fracBits);
    std::int64_t aligned = product;
    if (shift > 0)
        aligned = product >> shift; // arithmetic shift: trunc to -inf
    else if (shift < 0)
        aligned = product << -shift;
    return saturateRaw(acc_raw + aligned, acc_fmt);
}

/** Fixed-point ReLU: negative values clamp to zero. */
constexpr std::int64_t
reluRaw(std::int64_t raw)
{
    return raw < 0 ? 0 : raw;
}

/**
 * Round-trip quantisation error bound for @p fmt: |x - q(x)| <= lsb/2
 * for x inside the representable range.
 */
constexpr double
quantizationErrorBound(const FixedFormat &fmt)
{
    return fmt.lsb() / 2.0;
}

} // namespace eie

#endif // EIE_COMMON_FIXED_POINT_HH
