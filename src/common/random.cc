#include "common/random.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eie {

std::vector<std::uint32_t>
Rng::sampleWithoutReplacement(std::uint32_t n, std::uint32_t k)
{
    panic_if(k > n, "cannot sample %u items from a population of %u", k, n);

    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);

    if (k >= n / 8) {
        // Dense selection: partial Fisher-Yates over the population,
        // O(n + k) time.
        std::vector<std::uint32_t> population(n);
        for (std::uint32_t i = 0; i < n; ++i)
            population[i] = i;
        for (std::uint32_t i = 0; i < k; ++i) {
            auto j = static_cast<std::uint32_t>(uniformInt(i, n - 1));
            std::swap(population[i], population[j]);
        }
        chosen.assign(population.begin(), population.begin() + k);
    } else {
        // Floyd's algorithm: O(k) expected insertions, exact
        // distribution; the linear membership scan is cheap because
        // k is small relative to n here.
        for (std::uint32_t j = n - k; j < n; ++j) {
            auto t = static_cast<std::uint32_t>(uniformInt(0, j));
            if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
                chosen.push_back(t);
            else
                chosen.push_back(j);
        }
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace eie
