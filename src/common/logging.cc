#include "common/logging.hh"

#include <atomic>
#include <cstdio>

namespace eie {

namespace {

std::atomic<bool> quiet_flag{false};
std::atomic<std::uint64_t> warn_count{0};

const char *
levelName(Logger::Level level)
{
    switch (level) {
      case Logger::Level::Inform: return "info";
      case Logger::Level::Warn:   return "warn";
      case Logger::Level::Fatal:  return "fatal";
      case Logger::Level::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
Logger::vlog(Level level, const char *file, int line, const char *fmt,
             std::va_list args)
{
    if (level == Level::Warn)
        warn_count.fetch_add(1, std::memory_order_relaxed);

    bool suppressed = quiet_flag.load(std::memory_order_relaxed) &&
        (level == Level::Inform || level == Level::Warn);

    if (!suppressed) {
        std::fprintf(stderr, "%s: ", levelName(level));
        std::vfprintf(stderr, fmt, args);
        if (level == Level::Fatal || level == Level::Panic)
            std::fprintf(stderr, " @ %s:%d", file, line);
        std::fprintf(stderr, "\n");
        std::fflush(stderr);
    }

    if (level == Level::Panic)
        std::abort();
    if (level == Level::Fatal)
        std::exit(1);
}

void
Logger::log(Level level, const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog(level, file, line, fmt, args);
    va_end(args);
}

void
Logger::setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
Logger::quiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

std::uint64_t
Logger::warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

} // namespace eie
