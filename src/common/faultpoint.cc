#include "common/faultpoint.hh"

#include <atomic>
#include <map>
#include <mutex>

namespace eie::fault {

namespace {

struct Armed
{
    FaultSpec spec;
    std::uint64_t hits = 0;
};

/**
 * How many points are currently armed. The fast path in fire() reads
 * only this; the registry below is touched solely while it is
 * non-zero, so disarmed fault points stay off the serving hot path.
 */
std::atomic<std::uint64_t> armed_points{0};

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::string, Armed> &
registry()
{
    static std::map<std::string, Armed> points;
    return points;
}

} // namespace

bool
fire(const char *point, std::string_view detail)
{
    if (armed_points.load(std::memory_order_relaxed) == 0)
        return false;

    std::lock_guard lock(registryMutex());
    auto it = registry().find(point);
    if (it == registry().end())
        return false;

    Armed &armed = it->second;
    if (!armed.spec.match.empty() &&
        detail.find(armed.spec.match) == std::string_view::npos)
        return false;

    if (armed.spec.skip > 0) {
        --armed.spec.skip;
        return false;
    }
    if (armed.spec.count == 0)
        return false;
    --armed.spec.count;
    ++armed.hits;
    return true;
}

void
arm(const std::string &point, FaultSpec spec)
{
    std::lock_guard lock(registryMutex());
    auto [it, inserted] = registry().insert_or_assign(
        point, Armed{std::move(spec), 0});
    (void)it;
    if (inserted)
        armed_points.fetch_add(1, std::memory_order_relaxed);
}

void
disarm(const std::string &point)
{
    std::lock_guard lock(registryMutex());
    if (registry().erase(point) > 0)
        armed_points.fetch_sub(1, std::memory_order_relaxed);
}

void
disarmAll()
{
    std::lock_guard lock(registryMutex());
    armed_points.fetch_sub(registry().size(),
                           std::memory_order_relaxed);
    registry().clear();
}

std::uint64_t
hits(const std::string &point)
{
    std::lock_guard lock(registryMutex());
    auto it = registry().find(point);
    return it == registry().end() ? 0 : it->second.hits;
}

} // namespace eie::fault
