#include "common/fixed_point.hh"

#include <cmath>

namespace eie {

std::int64_t
quantize(double value, const FixedFormat &fmt)
{
    panic_if(fmt.totalBits < 2 || fmt.totalBits > 32,
             "unsupported fixed-point width %u", fmt.totalBits);
    panic_if(fmt.fracBits >= fmt.totalBits,
             "fraction bits %u must be < total bits %u",
             fmt.fracBits, fmt.totalBits);
    panic_if(std::isnan(value), "cannot quantize NaN");

    const double scaled =
        value * static_cast<double>(std::int64_t{1} << fmt.fracBits);
    // Round half away from zero, like a hardware round-to-nearest unit.
    const double rounded =
        scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
    if (rounded >= static_cast<double>(fmt.maxRaw()))
        return fmt.maxRaw();
    if (rounded <= static_cast<double>(fmt.minRaw()))
        return fmt.minRaw();
    return static_cast<std::int64_t>(rounded);
}

} // namespace eie
