/**
 * @file
 * Aligned text-table printer used by the benchmark harnesses to emit the
 * same rows/columns as the paper's tables and figure series.
 */

#ifndef EIE_COMMON_TABLE_HH
#define EIE_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace eie {

/** Column-aligned table with a header row, printed in Markdown-ish
 *  pipe style so bench output can be pasted into EXPERIMENTS.md. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent add*() calls fill it left-to-right. */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &add(std::string cell);

    /** Append a formatted double (fixed, @p precision decimals). */
    TextTable &add(double value, int precision = 2);

    /** Append an integer cell. */
    TextTable &add(std::int64_t value);
    TextTable &add(std::uint64_t value);
    TextTable &add(int value) { return add(std::int64_t{value}); }
    TextTable &add(unsigned value) { return add(std::uint64_t{value}); }

    /** Append a cell formatted as "N.NNx" (ratio). */
    TextTable &addRatio(double value, int precision = 1);

    /** Append a cell formatted as "NN.N%" (0..1 input). */
    TextTable &addPercent(double fraction, int precision = 1);

    /** Render the table with aligned columns. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace eie

#endif // EIE_COMMON_TABLE_HH
