/**
 * @file
 * Deterministic fault-injection points for resilience testing.
 *
 * A fault point is a named site in production code — e.g.
 * "tcp.drop_after_write" or "shard.submit_fail" — that asks the
 * harness whether an injected fault should trigger right now:
 *
 *     if (fault::fire("shard.submit_fail", shard_tag))
 *         throw std::runtime_error("injected fault: shard.submit_fail");
 *
 * Points are compiled in everywhere but cost a single relaxed atomic
 * load while nothing is armed, so they are safe to leave in hot
 * serving paths. Tests (and only tests) arm them:
 *
 *     fault::arm("shard.submit_fail", {.skip = 2, .count = 1,
 *                                      .match = "shard0"});
 *
 * fires exactly once, on the third call whose detail string contains
 * "shard0". Everything is deterministic: no randomness, no timers —
 * the same test sequence trips the same faults every run.
 *
 * Registered points:
 *   tcp.drop_after_write   server drops the connection after a reply
 *   shard.submit_fail      a shard's submit path throws
 *   registry.truncate_read model file bytes truncated after read
 *   batcher.stall          batcher thread sleeps before running a batch
 */

#ifndef EIE_COMMON_FAULTPOINT_HH
#define EIE_COMMON_FAULTPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace eie::fault {

/** What to inject at a fault point once armed. */
struct FaultSpec
{
    /** Number of matching calls to let through before firing. */
    std::uint64_t skip = 0;
    /** Number of matching calls to fire on after the skips. */
    std::uint64_t count = UINT64_MAX;
    /**
     * Only fire when the call site's detail string contains this
     * substring (empty matches everything). Lets one armed point
     * target e.g. a single shard out of many.
     */
    std::string match;
};

/**
 * Should the named fault point trigger on this call?
 *
 * Near-free while nothing is armed (one relaxed atomic load). The
 * call is counted against the armed spec's skip/count budget only
 * when @p detail matches.
 *
 * @param point  fault point name, e.g. "tcp.drop_after_write"
 * @param detail call-site context matched against FaultSpec::match
 * @return true if the caller should inject its fault now
 */
bool fire(const char *point, std::string_view detail = {});

/** Arm @p point with @p spec, replacing any previous arming. */
void arm(const std::string &point, FaultSpec spec = {});

/** Disarm @p point; calls to fire() become free again. */
void disarm(const std::string &point);

/** Disarm every point (test teardown). */
void disarmAll();

/** @return how many times @p point has fired since it was armed. */
std::uint64_t hits(const std::string &point);

} // namespace eie::fault

#endif // EIE_COMMON_FAULTPOINT_HH
