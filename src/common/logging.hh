/**
 * @file
 * Logging and error-reporting primitives in the gem5 tradition.
 *
 * Four severities are provided:
 *  - panic():  something happened that should never happen regardless of
 *              user input, i.e. an internal bug. Calls std::abort().
 *  - fatal():  the run cannot continue because of a user-level problem
 *              (bad configuration, impossible parameters). Exits with
 *              status 1.
 *  - warn():   something is suspicious or approximated but the run can
 *              continue.
 *  - inform(): progress or status information.
 *
 * All of them accept printf-style format strings and append the source
 * location of the call site.
 */

#ifndef EIE_COMMON_LOGGING_HH
#define EIE_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <string>

namespace eie {

/** Destination and verbosity control for log output. */
class Logger
{
  public:
    /** Message severity in increasing order of trouble. */
    enum class Level { Inform, Warn, Fatal, Panic };

    /**
     * Emit a message at the given level. Terminates the process for
     * Level::Fatal (exit(1)) and Level::Panic (abort()).
     *
     * @param level severity of the message
     * @param file  call-site file name
     * @param line  call-site line number
     * @param fmt   printf-style format string
     */
    [[gnu::format(printf, 4, 5)]]
    static void log(Level level, const char *file, int line,
                    const char *fmt, ...);

    /** va_list variant of log(). */
    static void vlog(Level level, const char *file, int line,
                     const char *fmt, std::va_list args);

    /**
     * Silence inform()/warn() output (e.g. in unit tests). Fatal and
     * panic messages are always printed.
     */
    static void setQuiet(bool quiet);

    /** @return true if inform()/warn() output is suppressed. */
    static bool quiet();

    /** Number of warnings emitted since process start (for tests). */
    static std::uint64_t warnCount();
};

} // namespace eie

/** Report an internal invariant violation and abort. Never returns. */
#define panic(...) \
    ::eie::Logger::log(::eie::Logger::Level::Panic, __FILE__, __LINE__, \
                       __VA_ARGS__)

/** Report an unrecoverable user-level error and exit(1). Never returns. */
#define fatal(...) \
    ::eie::Logger::log(::eie::Logger::Level::Fatal, __FILE__, __LINE__, \
                       __VA_ARGS__)

/** Report a suspicious-but-survivable condition. */
#define warn(...) \
    ::eie::Logger::log(::eie::Logger::Level::Warn, __FILE__, __LINE__, \
                       __VA_ARGS__)

/** Report status information. */
#define inform(...) \
    ::eie::Logger::log(::eie::Logger::Level::Inform, __FILE__, __LINE__, \
                       __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // EIE_COMMON_LOGGING_HH
