/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All stochastic pieces of the reproduction (synthetic weights,
 * activation patterns, k-means initialisation jitter, property tests)
 * draw from a Rng seeded explicitly, so every table and figure is
 * bit-reproducible across runs.
 */

#ifndef EIE_COMMON_RANDOM_HH
#define EIE_COMMON_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

namespace eie {

/** Deterministic, explicitly-seeded random source. */
class Rng
{
  public:
    /** Construct with an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Standard normal scaled to @p stddev around @p mean. */
    double
    normal(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Log-normal with the given underlying normal parameters. */
    double
    logNormal(double mu, double sigma)
    {
        std::lognormal_distribution<double> dist(mu, sigma);
        return dist(engine_);
    }

    /** Bernoulli trial with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /**
     * Choose exactly @p k distinct indices from [0, n) uniformly.
     * Returned indices are sorted ascending. Requires k <= n.
     */
    std::vector<std::uint32_t> sampleWithoutReplacement(std::uint32_t n,
                                                        std::uint32_t k);

    /** Fisher-Yates shuffle of @p values. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(uniformInt(0, i - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng
    fork()
    {
        return Rng(engine_() ^ 0x9e3779b97f4a7c15ull);
    }

    /** Access the underlying engine (for std::distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace eie

#endif // EIE_COMMON_RANDOM_HH
