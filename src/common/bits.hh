/**
 * @file
 * Small bit-manipulation helpers shared by the compressed-format encoder
 * and the hardware models.
 */

#ifndef EIE_COMMON_BITS_HH
#define EIE_COMMON_BITS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace eie {

/** @return a mask with the low @p n bits set (n in [0, 64]). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract bits [first, first+count) of @p value.
 *
 * @param value source word
 * @param first index of the least significant bit to extract
 * @param count number of bits to extract
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned count)
{
    return (value >> first) & mask(count);
}

/**
 * Return @p value with bits [first, first+count) replaced by the low
 * @p count bits of @p field.
 */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned count,
           std::uint64_t field)
{
    const std::uint64_t m = mask(count) << first;
    return (value & ~m) | ((field << first) & m);
}

/** @return true if @p value is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** @return ceil(log2(value)); 0 for value <= 1. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    if (value <= 1)
        return 0;
    return 64u - static_cast<unsigned>(std::countl_zero(value - 1));
}

/** @return floor(log2(value)); requires value >= 1. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value | 1));
}

/** @return ceil(a / b) for b > 0. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** @return @p value rounded up to the next multiple of @p align (> 0). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return divCeil(value, align) * align;
}

} // namespace eie

#endif // EIE_COMMON_BITS_HH
