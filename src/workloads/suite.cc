#include "workloads/suite.hh"

#include "common/random.hh"
#include "core/functional.hh"
#include "nn/generate.hh"

namespace eie::workloads {

const std::vector<Benchmark> &
suite()
{
    static const std::vector<Benchmark> benchmarks = {
        {"Alex-6", 9216, 4096, 0.09, 0.351,
         "Compressed AlexNet FC6 for large-scale image classification"},
        {"Alex-7", 4096, 4096, 0.09, 0.353,
         "Compressed AlexNet FC7 for large-scale image classification"},
        {"Alex-8", 4096, 1000, 0.25, 0.375,
         "Compressed AlexNet FC8 for large-scale image classification"},
        {"VGG-6", 25088, 4096, 0.04, 0.183,
         "Compressed VGG-16 FC6 for classification/object detection"},
        {"VGG-7", 4096, 4096, 0.04, 0.375,
         "Compressed VGG-16 FC7 for classification/object detection"},
        {"VGG-8", 4096, 1000, 0.23, 0.411,
         "Compressed VGG-16 FC8 for classification/object detection"},
        {"NT-We", 4096, 600, 0.10, 1.0,
         "Compressed NeuralTalk image-embedding layer"},
        {"NT-Wd", 600, 8791, 0.11, 1.0,
         "Compressed NeuralTalk word-decoder layer"},
        {"NT-LSTM", 1201, 2400, 0.10, 1.0,
         "Compressed NeuralTalk LSTM packed gate layer"},
    };
    return benchmarks;
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const Benchmark &b : suite())
        if (b.name == name)
            return b;
    fatal("no benchmark named '%s'", name.c_str());
    return suite().front(); // unreachable
}

platforms::Workload
workloadOf(const Benchmark &bench)
{
    platforms::Workload w;
    w.name = bench.name;
    w.rows = bench.output;
    w.cols = bench.input;
    w.weight_density = bench.weight_density;
    w.act_density = bench.act_density;
    return w;
}

namespace {

/** Per-benchmark deterministic seed. */
std::uint64_t
benchSeed(const Benchmark &bench, std::uint64_t base)
{
    std::uint64_t h = base;
    for (char c : bench.name)
        h = h * 1099511628211ull + static_cast<unsigned char>(c);
    return h;
}

} // namespace

SuiteRunner::SuiteRunner(std::uint64_t seed) : seed_(seed) {}

const compress::CompressedLayer &
SuiteRunner::layer(const Benchmark &bench)
{
    auto it = layers_.find(bench.name);
    if (it != layers_.end())
        return it->second;

    Rng rng(benchSeed(bench, seed_));
    nn::WeightGenOptions gen;
    gen.density = bench.weight_density;
    // Uniform Bernoulli occupancy. Real pruned weights additionally
    // carry clustered row importance (available through
    // WeightGenOptions::row_block_sigma), which mainly affects the
    // small-PE-count end of Figure 12 — see EXPERIMENTS.md for the
    // resulting deviation discussion.
    auto weights =
        nn::makeSparseWeights(bench.output, bench.input, gen, rng);

    compress::CompressionOptions opts; // interleave n_pe is irrelevant
                                       // here: plans re-encode per tile
    auto compressed = compress::CompressedLayer::compress(
        bench.name, weights, opts);
    return layers_.emplace(bench.name, std::move(compressed))
        .first->second;
}

const nn::Vector &
SuiteRunner::input(const Benchmark &bench)
{
    auto it = inputs_.find(bench.name);
    if (it != inputs_.end())
        return it->second;

    Rng rng(benchSeed(bench, seed_ ^ 0x5DEECE66Dull));
    auto activations =
        nn::makeActivations(bench.input, bench.act_density, rng);
    return inputs_.emplace(bench.name, std::move(activations))
        .first->second;
}

core::LayerPlan
SuiteRunner::plan(const Benchmark &bench, const core::EieConfig &config)
{
    return core::planLayer(layer(bench), nn::Nonlinearity::ReLU,
                           config);
}

core::RunResult
SuiteRunner::runEie(const Benchmark &bench, const core::EieConfig &config)
{
    const auto layer_plan = plan(bench, config);
    return runEieWithPlan(bench, config, layer_plan);
}

core::RunResult
SuiteRunner::runEieWithPlan(const Benchmark &bench,
                            const core::EieConfig &config,
                            const core::LayerPlan &layer_plan)
{
    const core::FunctionalModel functional(config);
    const auto raw = functional.quantizeInput(input(bench));
    return core::Accelerator(config).run(layer_plan, raw);
}

} // namespace eie::workloads
