/**
 * @file
 * The paper's benchmark suite (Table III): nine FC layers from
 * compressed AlexNet, VGG-16 and NeuralTalk, with their published
 * shapes, weight densities and activation densities. Weights and
 * activations are generated synthetically at those statistics (see
 * DESIGN.md §4 on substitutions).
 */

#ifndef EIE_WORKLOADS_SUITE_HH
#define EIE_WORKLOADS_SUITE_HH

#include <map>
#include <string>
#include <vector>

#include "compress/compressed_layer.hh"
#include "core/accelerator.hh"
#include "core/plan.hh"
#include "nn/tensor.hh"
#include "platforms/workload.hh"

namespace eie::workloads {

/** One Table III row. */
struct Benchmark
{
    std::string name;        ///< e.g. "Alex-6"
    std::size_t input = 0;   ///< layer input size (columns of W)
    std::size_t output = 0;  ///< layer output size (rows of W)
    double weight_density = 0.0; ///< Weight% of Table III
    double act_density = 0.0;    ///< Act% of Table III
    std::string description;
};

/** The nine benchmarks in Table III order. */
const std::vector<Benchmark> &suite();

/** Look up a benchmark by name (fatal if absent). */
const Benchmark &findBenchmark(const std::string &name);

/** The platform-model view of a benchmark. */
platforms::Workload workloadOf(const Benchmark &bench);

/**
 * Builds and caches the synthetic compressed layers and inputs of the
 * suite so sweeps across machine configurations re-use them. All
 * generation is seeded: every run of every bench sees the same
 * weights and activations.
 */
class SuiteRunner
{
  public:
    explicit SuiteRunner(std::uint64_t seed = 2016);

    /** The compressed layer of @p bench (built on first use). */
    const compress::CompressedLayer &layer(const Benchmark &bench);

    /** The input activation vector of @p bench (built on first use). */
    const nn::Vector &input(const Benchmark &bench);

    /**
     * Compile and run @p bench on the cycle-accurate simulator with
     * @p config.
     */
    core::RunResult runEie(const Benchmark &bench,
                           const core::EieConfig &config);

    /** Compile only (for padding/storage analyses). */
    core::LayerPlan plan(const Benchmark &bench,
                         const core::EieConfig &config);

    /**
     * Run with a pre-built plan (sweeps over FIFO depth or SRAM
     * width reuse one plan: the encoding depends only on n_pe).
     */
    core::RunResult runEieWithPlan(const Benchmark &bench,
                                   const core::EieConfig &config,
                                   const core::LayerPlan &layer_plan);

  private:
    std::uint64_t seed_;
    std::map<std::string, compress::CompressedLayer> layers_;
    std::map<std::string, nn::Vector> inputs_;
};

} // namespace eie::workloads

#endif // EIE_WORKLOADS_SUITE_HH
