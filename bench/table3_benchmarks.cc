/**
 * @file
 * Regenerates Table III: the benchmark suite. For each layer it
 * reports the published layer shape plus the *measured* statistics of
 * our synthetic instantiation (weight density after generation,
 * activation density of the generated input, FLOP% = the fraction of
 * dense FLOPs the compressed execution performs), along with the
 * compressed storage footprint (the quantity that must fit in
 * per-PE SRAM).
 */

#include <iostream>

#include "common/table.hh"
#include "core/config.hh"
#include "nn/tensor.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config;

    std::cout << "=== Table III: benchmarks from state-of-the-art DNN "
                 "models (synthetic instantiation) ===\n";
    eie::TextTable table({"Layer", "Size", "Weight% (paper)",
                          "Act% (paper)", "FLOP% (paper)",
                          "CSC KB/PE", "Description"});

    for (const auto &bench : workloads::suite()) {
        const auto &layer = runner.layer(bench);
        const auto &input = runner.input(bench);
        const double weight_density =
            layer.quantizedWeights().density();
        const double act_density = 1.0 - nn::zeroFraction(input);
        // FLOP% = fraction of dense multiplies actually performed:
        // non-zero weights in columns with non-zero activations.
        const double flop_pct = weight_density * act_density;

        const auto plan = runner.plan(bench, config);
        const double kb_per_pe =
            static_cast<double>(plan.totalEntries()) /
            config.n_pe / 1024.0; // 8-bit entries -> bytes

        char size[64];
        std::snprintf(size, sizeof(size), "%zu, %zu", bench.input,
                      bench.output);
        char wcol[64], acol[64], fcol[64];
        std::snprintf(wcol, sizeof(wcol), "%.1f%% (%.0f%%)",
                      100.0 * weight_density,
                      100.0 * bench.weight_density);
        std::snprintf(acol, sizeof(acol), "%.1f%% (%.1f%%)",
                      100.0 * act_density, 100.0 * bench.act_density);
        std::snprintf(fcol, sizeof(fcol), "%.1f%% (%.0f%%)",
                      100.0 * flop_pct,
                      100.0 * bench.weight_density *
                          bench.act_density);
        table.row()
            .add(bench.name)
            .add(size)
            .add(wcol)
            .add(acol)
            .add(fcol)
            .add(kb_per_pe, 1)
            .add(bench.description);
    }
    table.print(std::cout);

    std::cout << "\nEvery per-PE slice must fit the 128KB Spmat SRAM "
                 "(131072 entries); the largest above confirms the "
                 "paper's claim that compressed AlexNet/VGG FC layers "
                 "fit on chip.\n";
    return 0;
}
