/**
 * @file
 * Regenerates Table V: comparison with existing hardware platforms on
 * the AlexNet FC7 M×V (Alex-7). General-purpose platforms use the
 * calibrated roofline models; DaDianNao is peak-eDRAM-bandwidth
 * bound; TrueNorth uses its published operating point; EIE rows come
 * from the cycle-accurate simulator (64 PE at 45 nm / 800 MHz, and
 * 256 PE projected to 28 nm / 1200 MHz via the paper's own scaling).
 */

#include <iostream>
#include <memory>

#include "bench_common.hh"
#include "common/table.hh"
#include "energy/tech_scaling.hh"
#include "platforms/asic_models.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    const auto &fc7 = workloads::findBenchmark("Alex-7");
    const auto workload = workloads::workloadOf(fc7);

    struct Row
    {
        platforms::PlatformSpec spec;
        double frames_per_s = 0.0;
    };
    std::vector<Row> rows;

    // General-purpose platforms: dense model at batch 1 (the paper's
    // latency comparison).
    {
        const platforms::RooflinePlatform cpu(
            platforms::cpuCoreI7Params());
        rows.push_back({platforms::cpuSpec(),
                        1e6 / cpu.timeUs(workload, false, 1)});
        const platforms::RooflinePlatform gpu(
            platforms::gpuTitanXParams());
        rows.push_back({platforms::gpuSpec(),
                        1e6 / gpu.timeUs(workload, false, 1)});
        const platforms::RooflinePlatform mgpu(
            platforms::mobileGpuTegraK1Params());
        rows.push_back({platforms::mobileGpuSpec(),
                        1e6 / mgpu.timeUs(workload, false, 1)});
    }
    {
        const platforms::AEyeModel aeye;
        rows.push_back({platforms::AEyeModel::spec(),
                        1e6 / aeye.timeUs(workload, false, 1)});
        const platforms::DaDianNaoModel dadiannao;
        rows.push_back({platforms::DaDianNaoModel::spec(),
                        1e6 / dadiannao.timeUs(workload, false, 1)});
        const platforms::TrueNorthModel truenorth;
        rows.push_back({platforms::TrueNorthModel::spec(),
                        1e6 / truenorth.timeUs(workload, false, 1)});
    }

    // EIE 64 PE @ 45 nm, simulated.
    core::EieConfig eie64;
    const auto run64 = runner.runEie(fc7, eie64);
    {
        platforms::PlatformSpec spec;
        spec.name = "EIE (ours, 64PE)";
        spec.year = 2016;
        spec.type = "ASIC";
        spec.technology_nm = 45;
        spec.clock_mhz = "800";
        spec.memory_type = "SRAM";
        spec.max_model_params = std::to_string(
            eie64.n_pe * eie64.spmat_capacity_entries * 10 /
            1000000) + "M";
        spec.quantization = "4-bit fixed";
        spec.area_mm2 = energy::acceleratorAreaMm2(eie64);
        spec.power_watts = bench::eiePowerWatts(eie64, run64.stats);
        rows.push_back({spec, 1e6 / run64.stats.timeUs()});
    }

    // EIE 256 PE projected to 28 nm / 1200 MHz (paper's projection:
    // area x (28/45)^2, per-PE power held, 1.5x clock).
    core::EieConfig eie256 = eie64;
    eie256.n_pe = 256;
    const auto run256 = runner.runEie(fc7, eie256);
    {
        using P = energy::Eie28nmProjection;
        platforms::PlatformSpec spec;
        spec.name = "EIE (28nm, 256PE)";
        spec.year = 2016;
        spec.type = "ASIC";
        spec.technology_nm = 28;
        spec.clock_mhz = "1200";
        spec.memory_type = "SRAM";
        spec.max_model_params = std::to_string(
            eie256.n_pe * eie256.spmat_capacity_entries * 10 /
            1000000) + "M";
        spec.quantization = "4-bit fixed";
        spec.area_mm2 =
            energy::acceleratorAreaMm2(eie256) * P::area_scale;
        spec.power_watts =
            bench::eiePowerWatts(eie256, run256.stats) *
            P::power_scale;
        rows.push_back(
            {spec, 1e6 / run256.stats.timeUs() * P::freq_scale});
    }

    std::cout << "=== Table V: comparison with existing platforms "
                 "(AlexNet FC7 M×V) ===\n";
    eie::TextTable table({"Platform", "Year", "Type", "Tech",
                          "Clock(MHz)", "Memory", "MaxParams", "Quant",
                          "Area(mm2)", "Power(W)", "MxV Frames/s",
                          "Frames/s/mm2", "Frames/J"});
    for (const auto &row : rows) {
        const auto &s = row.spec;
        table.row()
            .add(s.name)
            .add(std::int64_t{s.year})
            .add(s.type)
            .add(std::to_string(s.technology_nm) + "nm")
            .add(s.clock_mhz)
            .add(s.memory_type)
            .add(s.max_model_params)
            .add(s.quantization);
        if (s.area_mm2 > 0.0)
            table.add(s.area_mm2, 1);
        else
            table.add("-");
        table.add(s.power_watts, 2);
        table.add(row.frames_per_s, 0);
        if (s.area_mm2 > 0.0)
            table.add(row.frames_per_s / s.area_mm2, 1);
        else
            table.add("-");
        table.add(row.frames_per_s / s.power_watts, 0);
    }
    table.print(std::cout);

    const double dd_throughput = rows[4].frames_per_s;
    const double eie28_throughput = rows.back().frames_per_s;
    std::cout << "\nEIE(28nm,256PE) vs DaDianNao: "
              << eie28_throughput / dd_throughput << "x throughput "
              << "(paper: 2.9x), "
              << (eie28_throughput / rows.back().spec.area_mm2) /
                 (dd_throughput / rows[4].spec.area_mm2)
              << "x area efficiency (paper: 3x), "
              << (eie28_throughput / rows.back().spec.power_watts) /
                 (dd_throughput / rows[4].spec.power_watts)
              << "x energy efficiency (paper: 19x).\n"
              << "256PE over 64PE throughput (same clock): "
              << static_cast<double>(run64.stats.cycles) /
                 static_cast<double>(run256.stats.cycles)
              << "x (paper: 3.25x).\n";
    return 0;
}
