/**
 * @file
 * Regenerates Figure 6: speedups of CPU/GPU/mGPU (dense and
 * compressed) and EIE on the nine benchmarks, normalised to CPU dense
 * (batch 1, as the paper's latency-focused comparison demands), plus
 * the geometric mean.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config;

    eie::TextTable table({"Benchmark", "CPU Dense", "CPU Compressed",
                          "GPU Dense", "GPU Compressed", "mGPU Dense",
                          "mGPU Compressed", "EIE"});

    std::vector<double> col[7];
    for (const auto &bench_def : workloads::suite()) {
        const auto t =
            bench::computeTimes(runner, bench_def, config);
        const double base = t.cpu_dense;
        const double speedups[7] = {
            1.0,
            base / t.cpu_sparse,
            base / t.gpu_dense,
            base / t.gpu_sparse,
            base / t.mgpu_dense,
            base / t.mgpu_sparse,
            base / t.eie_actual,
        };
        table.row().add(bench_def.name);
        for (int c = 0; c < 7; ++c) {
            table.addRatio(speedups[c], 1);
            col[c].push_back(speedups[c]);
        }
    }
    table.row().add("Geo Mean");
    for (auto &c : col)
        table.addRatio(bench::geomean(c), 1);

    std::cout << "=== Figure 6: speedup over CPU dense (batch 1) "
                 "===\n";
    table.print(std::cout);
    std::cout << "\nPaper geomeans: CPU compressed 3x, GPU dense 15x, "
                 "GPU compressed 48x, mGPU dense 0.6x, mGPU "
                 "compressed 3x, EIE 189x.\n";
    return 0;
}
