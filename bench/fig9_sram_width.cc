/**
 * @file
 * Regenerates Figure 9: the Spmat SRAM width sweep (32..512 bits).
 * Left panel: energy per read (SRAM model) and number of reads
 * (cycle-accurate simulator) on the AlexNet layers; right panel:
 * total Spmat read energy per benchmark, which must bottom out at the
 * paper's chosen 64-bit interface.
 */

#include <iostream>

#include "common/table.hh"
#include "energy/sram_model.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    const std::vector<unsigned> widths = {32, 64, 128, 256, 512};

    // Left panel: energy/read and AlexNet read counts.
    std::cout << "=== Figure 9 (left): read energy and read count vs "
                 "SRAM width ===\n";
    eie::TextTable left({"Width", "Energy/read (pJ)",
                         "Reads (Alex-6+7+8)"});
    std::vector<std::vector<std::uint64_t>> reads_by_width;
    std::vector<std::vector<std::string>> bench_names;
    const std::size_t spmat_bytes = core::EieConfig{}
        .spmat_capacity_entries; // 128KB (1 byte per entry)

    for (unsigned width : widths) {
        core::EieConfig config;
        config.spmat_width_bits = width;
        std::uint64_t alexnet_reads = 0;
        std::vector<std::uint64_t> all_reads;
        for (const auto &bench_def : workloads::suite()) {
            const auto result = runner.runEie(bench_def, config);
            all_reads.push_back(result.stats.spmat_row_fetches);
            if (bench_def.name.rfind("Alex", 0) == 0)
                alexnet_reads += result.stats.spmat_row_fetches;
        }
        reads_by_width.push_back(std::move(all_reads));
        left.row()
            .add(std::to_string(width) + " bit")
            .add(energy::SramModel::readEnergyPj(spmat_bytes, width), 1)
            .add(alexnet_reads);
    }
    left.print(std::cout);

    // Right panel: total Spmat read energy per benchmark.
    std::cout << "\n=== Figure 9 (right): total Spmat read energy "
                 "(nJ) ===\n";
    std::vector<std::string> headers{"Width"};
    for (const auto &bench_def : workloads::suite())
        headers.push_back(bench_def.name);
    eie::TextTable right(headers);

    std::vector<double> total_by_width(widths.size(), 0.0);
    for (std::size_t w = 0; w < widths.size(); ++w) {
        right.row().add(std::to_string(widths[w]) + "bit");
        const double e_read =
            energy::SramModel::readEnergyPj(spmat_bytes, widths[w]);
        for (std::size_t b = 0; b < workloads::suite().size(); ++b) {
            const double nj =
                static_cast<double>(reads_by_width[w][b]) * e_read /
                1000.0;
            right.add(nj, 1);
            total_by_width[w] += nj;
        }
    }
    right.print(std::cout);

    std::size_t best = 0;
    for (std::size_t w = 1; w < widths.size(); ++w)
        if (total_by_width[w] < total_by_width[best])
            best = w;
    std::cout << "\nMinimum total Spmat read energy at "
              << widths[best] << "-bit width (paper chooses 64).\n";
    return 0;
}
