/**
 * @file
 * Gateway-overhead series: what the multi-tenant HTTP front door
 * costs per request over a direct `tcp://` connection to the same
 * daemon, plus a 2x-overload fairness run showing a tenant flooding
 * past its concurrency quota cannot starve another tenant's p99.
 *
 * Topology: registry -> loopback TcpServer -> HttpGateway -> http://
 * client, with a direct tcp:// client against the same daemon as the
 * floor. The overhead series runs with auth off (pure proxy cost);
 * the fairness run loads a two-tenant table — an "abuser" driving 2x
 * its max_concurrent quota open-loop and a "victim" sending paced
 * sequential requests — and reports the victim's p50/p99 alone vs
 * under abuse.
 *
 * Results are appended to BENCH_client.json next to the
 * client-overhead series (same clientTransportStamp schema): the
 * existing document is parsed, its writeBenchJson stamps stripped
 * (they are re-applied), and a "gateway" section added. Run
 * bench_client_overhead first for a complete file; standalone runs
 * produce a gateway-only document.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "bench_common.hh"
#include "client/client.hh"
#include "common/random.hh"
#include "compress/compressed_layer.hh"
#include "core/functional.hh"
#include "gateway/gateway.hh"
#include "nn/generate.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

constexpr std::size_t kRows = 512;
constexpr std::size_t kCols = 512;
constexpr double kDensity = 0.09;
constexpr std::size_t kRequests = 800;
constexpr std::size_t kWindow = 32;
constexpr std::size_t kVictimRequests = 200;
constexpr std::uint32_t kAbuserQuota = 8;
constexpr double kOverload = 2.0; ///< abuser in-flight / quota

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Pipelined single-frame requests; returns wall seconds. */
double
drive(client::Client &client, const std::string &model,
      const std::vector<std::vector<std::int64_t>> &inputs)
{
    std::deque<std::future<client::InferenceResult>> in_flight;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRequests; ++i) {
        while (in_flight.size() >= kWindow) {
            const client::InferenceResult result =
                in_flight.front().get();
            fatal_if(!result.ok(), "request failed: %s",
                     result.status.toString().c_str());
            in_flight.pop_front();
        }
        client::InferenceRequest request;
        request.model = model;
        request.fixed.push_back(inputs[i % inputs.size()]);
        in_flight.push_back(client.submit(std::move(request)));
    }
    while (!in_flight.empty()) {
        fatal_if(!in_flight.front().get().ok(), "request failed");
        in_flight.pop_front();
    }
    return secondsSince(start);
}

/** Paced sequential victim loop; returns per-request latencies, us. */
std::vector<double>
driveVictim(client::Client &client, const std::string &model,
            const std::vector<std::vector<std::int64_t>> &inputs)
{
    std::vector<double> latencies;
    latencies.reserve(kVictimRequests);
    for (std::size_t i = 0; i < kVictimRequests; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const client::InferenceResult result =
            client.inferRaw(model, inputs[i % inputs.size()]);
        fatal_if(!result.ok(), "victim request failed: %s",
                 result.status.toString().c_str());
        latencies.push_back(1e6 * secondsSince(start));
    }
    return latencies;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t at = std::min(
        values.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(
                                         values.size())));
    return values[at];
}

/** obs::JsonValue -> bench::Json (merging the existing file). */
bench::Json
toBench(const obs::JsonValue &value)
{
    switch (value.kind) {
      case obs::JsonValue::Kind::Bool:
        return bench::Json(value.boolean);
      case obs::JsonValue::Kind::Number:
        if (value.number >= 0 &&
            value.number == std::floor(value.number) &&
            value.number < 9e15)
            return bench::Json(
                static_cast<std::uint64_t>(value.number));
        return bench::Json(value.number);
      case obs::JsonValue::Kind::String:
        return bench::Json(value.string);
      case obs::JsonValue::Kind::Array: {
        bench::Json array = bench::Json::array();
        for (const obs::JsonValue &element : value.array)
            array.push(toBench(element));
        return array;
      }
      case obs::JsonValue::Kind::Object: {
        bench::Json object;
        for (const auto &[key, member] : value.object)
            object.set(key, toBench(member));
        return object;
      }
      case obs::JsonValue::Kind::Null:
        break;
    }
    return bench::Json(false); // BENCH files carry no nulls
}

} // namespace

int
main()
{
    core::EieConfig config; // 64 PE
    const std::uint64_t seed = 2016;

    const fs::path dir = fs::temp_directory_path() /
        ("eie_bench_gateway_" + std::to_string(::getpid()));
    serve::ModelRegistry registry(dir.string(), config);
    {
        Rng rng(seed);
        nn::WeightGenOptions wopts;
        wopts.density = kDensity;
        compress::CompressionOptions copts;
        copts.interleave.n_pe = config.n_pe;
        registry.publish(
            "fc", 1,
            compress::CompressedLayer::compress(
                "fc", nn::makeSparseWeights(kRows, kCols, wopts, rng),
                copts)
                .storage());
    }

    const core::FunctionalModel functional(config);
    std::vector<std::vector<std::int64_t>> inputs;
    for (std::size_t i = 0; i < 64; ++i) {
        Rng rng(seed + 77 * i + 1);
        inputs.push_back(functional.quantizeInput(
            nn::makeActivations(kCols, 0.35, rng)));
    }

    serve::ServingDirectory directory(registry,
                                      serve::ClusterOptions{});
    serve::TcpServer server(directory);
    server.start();
    const std::string tcp_endpoint =
        "tcp://127.0.0.1:" + std::to_string(server.port());

    obs::MetricsRegistry metrics;
    gateway::GatewayOptions gateway_options;
    gateway_options.client.config = config;
    gateway_options.registry = &metrics;
    client::Status status;
    auto gw = gateway::HttpGateway::create(tcp_endpoint,
                                           gateway_options, status);
    fatal_if(!gw, "cannot start gateway: %s",
             status.toString().c_str());
    const std::string http_endpoint =
        "http://127.0.0.1:" + std::to_string(gw->port());

    client::ClientOptions options;
    options.config = config;

    // ------------------------------------------------ overhead series
    bench::Json series = bench::Json::array();
    double tcp_us = 0.0;
    for (const std::string &endpoint :
         {tcp_endpoint, http_endpoint}) {
        auto client = client::Client::connectOrDie(endpoint, options);
        const double wall_s = drive(*client, "fc", inputs);
        const double us_per_request =
            1e6 * wall_s / static_cast<double>(kRequests);
        const double rps = static_cast<double>(kRequests) / wall_s;
        if (endpoint == tcp_endpoint)
            tcp_us = us_per_request;

        bench::Json row = bench::clientTransportStamp(*client);
        row.set("requests", static_cast<std::uint64_t>(kRequests))
            .set("window", static_cast<std::uint64_t>(kWindow))
            .set("requests_per_s", rps)
            .set("us_per_request", us_per_request)
            .set("overhead_us_vs_direct_tcp",
                 us_per_request - tcp_us);
        std::cout << client->transport() << ": " << rps
                  << " requests/s (" << us_per_request
                  << " us/request, +" << us_per_request - tcp_us
                  << " us over direct tcp)\n";
        series.push(std::move(row));
        client->close();
    }

    // ------------------------------------------------- fairness run
    // Two tenants: the abuser keeps 2x its concurrency quota in
    // flight (half rejected 429 at the door), the victim paces
    // sequential requests. The victim's p99 must not collapse.
    gw->tenants().load(gateway::loadTenantConfigs(R"({"tenants":[
        {"name":"abuser","token":"bench-abuser","max_concurrent":)" +
        std::to_string(kAbuserQuota) + R"(},
        {"name":"victim","token":"bench-victim"}
    ]})"));

    auto victim = client::Client::connectOrDie(
        http_endpoint + ",token=bench-victim", options);
    const std::vector<double> alone =
        driveVictim(*victim, "fc", inputs);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> abuser_ok{0};
    std::atomic<std::uint64_t> abuser_rejected{0};
    std::thread abuser([&] {
        auto client = client::Client::connectOrDie(
            http_endpoint + ",token=bench-abuser", options);
        const std::size_t window = static_cast<std::size_t>(
            kOverload * static_cast<double>(kAbuserQuota));
        std::deque<std::future<client::InferenceResult>> in_flight;
        while (!stop.load(std::memory_order_relaxed)) {
            while (in_flight.size() >= window) {
                const client::InferenceResult result =
                    in_flight.front().get();
                in_flight.pop_front();
                (result.ok() ? abuser_ok : abuser_rejected)
                    .fetch_add(1, std::memory_order_relaxed);
            }
            client::InferenceRequest request;
            request.model = "fc";
            request.fixed.push_back(
                inputs[in_flight.size() % inputs.size()]);
            in_flight.push_back(client->submit(std::move(request)));
        }
        while (!in_flight.empty()) {
            (void)in_flight.front().get();
            in_flight.pop_front();
        }
        client->close();
    });

    // Let the abuser saturate its quota before measuring.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::vector<double> under_abuse =
        driveVictim(*victim, "fc", inputs);
    stop.store(true);
    abuser.join();
    victim->close();

    const double p50_alone = percentile(alone, 0.50);
    const double p99_alone = percentile(alone, 0.99);
    const double p50_abuse = percentile(under_abuse, 0.50);
    const double p99_abuse = percentile(under_abuse, 0.99);
    std::cout << "victim p50/p99 alone: " << p50_alone << "/"
              << p99_alone << " us; under " << kOverload
              << "x abuse: " << p50_abuse << "/" << p99_abuse
              << " us (abuser admitted " << abuser_ok.load()
              << ", rejected " << abuser_rejected.load() << ")\n";
    fatal_if(abuser_rejected.load() == 0,
             "abuser was never rejected: overload did not exceed "
             "the quota");

    bench::Json fairness;
    fairness
        .set("victim_requests",
             static_cast<std::uint64_t>(kVictimRequests))
        .set("overload_factor", kOverload)
        .set("abuser_max_concurrent",
             static_cast<std::uint64_t>(kAbuserQuota))
        .set("abuser_admitted", abuser_ok.load())
        .set("abuser_rejected_429", abuser_rejected.load())
        .set("victim_p50_us_alone", p50_alone)
        .set("victim_p99_us_alone", p99_alone)
        .set("victim_p50_us_under_abuse", p50_abuse)
        .set("victim_p99_us_under_abuse", p99_abuse)
        .set("victim_p99_ratio",
             p99_alone > 0.0 ? p99_abuse / p99_alone : 0.0);

    gw->stop();
    server.stop();
    directory.stopAll();

    bench::Json gateway_section;
    gateway_section
        .set("rows", static_cast<std::uint64_t>(kRows))
        .set("cols", static_cast<std::uint64_t>(kCols))
        .set("weight_density", kDensity)
        .set("n_pe", static_cast<std::uint64_t>(config.n_pe))
        .set("series", std::move(series))
        .set("fairness", std::move(fairness));

    // Append to BENCH_client.json: keep every existing section, drop
    // the writeBenchJson stamps (re-applied on write).
    bench::Json root;
    std::ifstream existing("BENCH_client.json");
    if (existing) {
        std::ostringstream text;
        text << existing.rdbuf();
        try {
            const obs::JsonValue parsed = obs::parseJson(text.str());
            for (const auto &[key, member] : parsed.object) {
                if (key == "schema_version" ||
                    key == "hardware_threads" ||
                    key == "compiler" || key == "march" ||
                    key == "kernel_simd" || key == "gateway")
                    continue;
                root.set(key, toBench(member));
            }
        } catch (const std::exception &exception) {
            std::cerr << "ignoring unreadable BENCH_client.json: "
                      << exception.what() << "\n";
        }
    } else {
        root.set("benchmark", "client_overhead");
    }
    root.set("gateway", std::move(gateway_section));
    bench::writeBenchJson("BENCH_client.json", std::move(root));

    fs::remove_all(dir);
    return 0;
}
