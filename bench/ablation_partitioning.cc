/**
 * @file
 * Ablation of §VII-A "Workload Partitioning": EIE's row-interleaved
 * scheme vs the alternative column-distributed scheme. For each
 * benchmark it reports per-scheme makespan (compute + any cross-PE
 * reduction), load balance and fully-idle PEs at 64 PEs. The paper's
 * argument: with a sparse too, column partitioning turns dynamic
 * activation sparsity into idle PEs and still pays a reduction.
 */

#include <iostream>

#include "common/table.hh"
#include "core/ext/column_partition.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    const unsigned n_pe = 64;

    eie::TextTable table({"Benchmark", "Row cycles", "Col cycles",
                          "Col reduction", "Row balance",
                          "Col balance", "Col idle PEs",
                          "Row advantage"});

    for (const auto &bench_def : workloads::suite()) {
        const auto &weights = runner.layer(bench_def).quantizedWeights();
        const auto &input = runner.input(bench_def);

        const auto row = core::ext::rowPartitionCost(weights, input,
                                                     n_pe);
        const auto col = core::ext::columnPartitionCost(weights, input,
                                                        n_pe);

        table.row()
            .add(bench_def.name)
            .add(row.totalCycles())
            .add(col.totalCycles())
            .add(col.reduction_cycles)
            .addPercent(row.load_balance)
            .addPercent(col.load_balance)
            .add(col.idle_pes)
            .addRatio(static_cast<double>(col.totalCycles()) /
                      static_cast<double>(row.totalCycles()), 2);
    }

    std::cout << "=== Ablation (SVII-A): row vs column workload "
                 "partitioning, 64 PEs ===\n";
    table.print(std::cout);
    std::cout << "\nRow interleaving keeps every output local (no "
                 "reduction) and spreads each active column across "
                 "all PEs; column distribution idles the PEs whose "
                 "activations are zero and adds a cross-PE "
                 "reduction.\n";
    return 0;
}
