/**
 * @file
 * Regenerates Figure 12: real work / total work (the padding-zero
 * overhead of the 4-bit relative index) vs number of PEs. This is a
 * pure property of the interleaved-CSC encoding — no simulation
 * needed. More PEs shorten each PE's local columns, so zero runs are
 * truncated below the 15-zero encodable maximum and padding
 * disappears; at 256 PEs a 4096-row layer has 16 local rows per PE
 * and can never need padding.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    const std::vector<unsigned> pe_counts = {1, 2, 4, 8, 16, 32, 64,
                                             128, 256};

    std::vector<std::string> headers{"Benchmark"};
    for (unsigned n : pe_counts)
        headers.push_back(std::to_string(n) + "PE");
    eie::TextTable table(headers);

    Logger::setQuiet(true); // capacity warnings at small PE counts

    for (const auto &bench_def : workloads::suite()) {
        table.row().add(bench_def.name);
        for (unsigned n : pe_counts) {
            core::EieConfig config;
            config.n_pe = n;
            config.enforce_capacity = false;
            const auto plan = runner.plan(bench_def, config);
            table.addPercent(plan.realWorkRatio());
        }
    }
    Logger::setQuiet(false);

    std::cout << "=== Figure 12: real work / total work vs #PEs ===\n";
    table.print(std::cout);
    std::cout << "\nPaper: padding decreases monotonically with more "
                 "PEs; the sparsest layers (VGG at 4%) pay the most "
                 "at 1 PE.\n";
    return 0;
}
