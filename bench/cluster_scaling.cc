/**
 * @file
 * Cluster scaling benchmark: requests/s versus shard count at
 * saturating offered load, the Fig. 11 scalability argument lifted
 * from PEs to whole EIE instances.
 *
 * A 1024x1024 pruned layer (9% weights, 35% activations, 16 PEs) is
 * loaded as an in-memory serve::LoadedModel and served by a
 * serve::ClusterEngine at 1, 2 and 4 replicated shards (one worker
 * thread each), plus a 4-shard column-partitioned point. Load is
 * saturating: every request is submitted back-to-back up front, so
 * each point measures peak cluster service rate, not arrival
 * behaviour. Every response is verified bit-exact against the
 * "scalar" oracle backend.
 *
 * Writes BENCH_cluster.json (requests/s, speedup over one shard,
 * latency percentiles per point; schema-stamped with the machine's
 * hardware thread count — shard scaling is only observable with at
 * least as many cores as shards).
 *
 * Run from the build directory:
 *
 *   ./bench_cluster_scaling [cluster.json]
 */

#include <chrono>
#include <future>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "compress/compressed_layer.hh"
#include "core/ext/column_partition.hh"
#include "core/functional.hh"
#include "engine/backend.hh"
#include "nn/generate.hh"
#include "serve/cluster.hh"
#include "serve/registry.hh"

namespace {

using namespace eie;

constexpr std::size_t kRows = 1024;
constexpr std::size_t kCols = 1024;
constexpr double kWeightDensity = 0.09;
constexpr double kActDensity = 0.35;
constexpr unsigned kPes = 16;
constexpr std::size_t kDistinctInputs = 32;
constexpr std::size_t kRequestsPerShard = 768;

struct Point
{
    unsigned shards = 0;
    serve::Placement placement = serve::Placement::Replicated;
    std::size_t requests = 0;
    double wall_s = 0.0;
    double rps = 0.0;
    double speedup = 0.0; ///< vs the 1-shard replicated point
    double p50_us = 0.0;
    double p99_us = 0.0;
    double mean_batch = 0.0;
};

/** Saturating closed sweep: submit everything, then wait for it. */
Point
runPoint(const std::shared_ptr<const serve::LoadedModel> &model,
         unsigned shards, serve::Placement placement,
         const std::vector<std::vector<std::int64_t>> &inputs,
         const std::vector<std::vector<std::int64_t>> &reference)
{
    serve::ClusterOptions options;
    options.shards = shards;
    options.placement = placement;
    options.threads_per_shard = 1;
    options.server.max_batch = 16;
    options.server.max_delay = std::chrono::microseconds(200);
    serve::ClusterEngine cluster(model, options);

    const std::size_t requests = kRequestsPerShard * shards;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    futures.reserve(requests);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests; ++i)
        futures.push_back(
            cluster.submit(inputs[i % inputs.size()]));
    for (std::size_t i = 0; i < requests; ++i)
        fatal_if(futures[i].get() != reference[i % inputs.size()],
                 "request %zu diverged from the scalar oracle "
                 "(%u shards, %s)", i, shards,
                 serve::placementName(placement));
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    cluster.stop();

    const serve::ClusterStats stats = cluster.stats();
    Point p;
    p.shards = shards;
    p.placement = placement;
    p.requests = requests;
    p.wall_s = wall_s;
    p.rps = static_cast<double>(requests) / wall_s;
    p.p50_us = stats.p50_latency_us;
    p.p99_us = stats.p99_latency_us;
    p.mean_batch = stats.mean_batch;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_cluster.json";

    // Build the layer once and wrap it as an in-memory LoadedModel
    // (the registry's fromStorage path, minus the file).
    Rng rng(2016);
    nn::WeightGenOptions wopts;
    wopts.density = kWeightDensity;
    compress::CompressionOptions copts;
    copts.interleave.n_pe = kPes;
    const auto layer = compress::CompressedLayer::compress(
        "cluster_bench",
        nn::makeSparseWeights(kRows, kCols, wopts, rng), copts);

    core::EieConfig config;
    config.n_pe = kPes;
    const auto model = serve::LoadedModel::fromStorage(
        "cluster_bench", 1, layer.storage(), nn::Nonlinearity::ReLU,
        config);

    const core::FunctionalModel functional(config);
    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<nn::Vector> float_inputs;
    for (std::size_t i = 0; i < kDistinctInputs; ++i) {
        Rng frame_rng(4096 + 77 * i);
        float_inputs.push_back(
            nn::makeActivations(kCols, kActDensity, frame_rng));
        inputs.push_back(functional.quantizeInput(float_inputs.back()));
    }

    const auto oracle =
        engine::makeBackend("scalar", config, {&model->plan()});
    std::vector<std::vector<std::int64_t>> reference;
    for (const auto &input : inputs)
        reference.push_back(oracle->run(input).outputs.front());

    const unsigned hw_threads = std::thread::hardware_concurrency();
    std::vector<Point> points;
    for (const unsigned shards : {1u, 2u, 4u})
        points.push_back(runPoint(model, shards,
                                  serve::Placement::Replicated,
                                  inputs, reference));
    points.push_back(runPoint(model, 4,
                              serve::Placement::ColumnPartitioned,
                              inputs, reference));
    const double base_rps = points.front().rps;
    for (Point &p : points)
        p.speedup = p.rps / base_rps;

    // Analytic context for the partitioned point: the §VII-A cost
    // model of distributing columns (compute makespan + reduction).
    const auto analytic = core::ext::columnPartitionCost(
        model->quantized(), float_inputs.front(), 4);

    TextTable table({"Shards", "Policy", "Requests", "Requests/s",
                     "Speedup", "p50 us", "p99 us", "Mean batch"});
    for (const Point &p : points) {
        table.row()
            .add(static_cast<std::uint64_t>(p.shards))
            .add(serve::placementName(p.placement))
            .add(static_cast<std::uint64_t>(p.requests))
            .add(p.rps, 1)
            .add(p.speedup, 2)
            .add(p.p50_us, 1)
            .add(p.p99_us, 1)
            .add(p.mean_batch, 2);
    }
    std::cout << kRows << "x" << kCols << ", "
              << 100 * kWeightDensity << "% weights, "
              << 100 * kActDensity << "% activations, " << kPes
              << " PEs, saturating offered load\n";
    table.print(std::cout);
    if (hw_threads < 4)
        std::cout << "note: only " << hw_threads
                  << " hardware thread(s) — shard scaling is "
                     "serialized on this machine; compare points "
                     "only across runs with equal hardware_threads\n";

    bench::Json layer_json;
    layer_json.set("rows", kRows)
        .set("cols", kCols)
        .set("weight_density", kWeightDensity)
        .set("act_density", kActDensity)
        .set("n_pe", config.n_pe);
    bench::Json points_json = bench::Json::array();
    for (const Point &p : points) {
        bench::Json point;
        point.set("shards", static_cast<std::uint64_t>(p.shards))
            .set("placement", serve::placementName(p.placement))
            .set("requests", static_cast<std::uint64_t>(p.requests))
            .set("wall_s", p.wall_s)
            .set("requests_per_sec", p.rps)
            .set("speedup_vs_1shard", p.speedup)
            .set("p50_latency_us", p.p50_us)
            .set("p99_latency_us", p.p99_us)
            .set("mean_batch", p.mean_batch);
        points_json.push(std::move(point));
    }
    bench::Json analytic_json;
    analytic_json
        .set("compute_cycles", analytic.compute_cycles)
        .set("reduction_cycles", analytic.reduction_cycles)
        .set("load_balance", analytic.load_balance);
    bench::Json root;
    root.set("layer", std::move(layer_json))
        .set("distinct_inputs",
             static_cast<std::uint64_t>(kDistinctInputs))
        .set("requests_per_shard",
             static_cast<std::uint64_t>(kRequestsPerShard))
        .set("points", std::move(points_json))
        .set("column_partition_analytic", std::move(analytic_json));
    bench::writeBenchJson(json_path, root);
    return 0;
}
