/**
 * @file
 * Regenerates Figure 13: load-balance efficiency (ALU busy fraction)
 * vs number of PEs at the chosen FIFO depth of 8. More PEs leave
 * fewer entries per PE per column, so binomial variation across PEs
 * bites harder — but padding simultaneously shrinks (Figure 12),
 * keeping overall efficiency roughly flat for most benchmarks.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    const std::vector<unsigned> pe_counts = {1, 2, 4, 8, 16, 32, 64,
                                             128, 256};

    std::vector<std::string> headers{"Benchmark"};
    for (unsigned n : pe_counts)
        headers.push_back(std::to_string(n) + "PE");
    eie::TextTable table(headers);

    Logger::setQuiet(true);

    for (const auto &bench_def : workloads::suite()) {
        table.row().add(bench_def.name);
        for (unsigned n : pe_counts) {
            core::EieConfig config;
            config.n_pe = n;
            config.fifo_depth = 8;
            config.enforce_capacity = false;
            const auto result = runner.runEie(bench_def, config);
            table.addPercent(result.stats.loadBalance());
        }
    }
    Logger::setQuiet(false);

    std::cout << "=== Figure 13: load balance vs #PEs (FIFO depth 8) "
                 "===\n";
    table.print(std::cout);
    std::cout << "\nPaper: more PEs lead to worse load balance but "
                 "less padding; NT-We degrades fastest.\n";
    return 0;
}
