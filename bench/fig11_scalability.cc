/**
 * @file
 * Regenerates Figure 11: speedup vs number of PEs (1..256), per
 * benchmark, normalised to the 1-PE cycle count. The paper reports
 * near-linear scaling except NT-We (600 rows over many PEs starve).
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    const std::vector<unsigned> pe_counts = {1, 2, 4, 8, 16, 32, 64,
                                             128, 256};

    std::vector<std::string> headers{"Benchmark"};
    for (unsigned n : pe_counts)
        headers.push_back(std::to_string(n) + "PE");
    eie::TextTable table(headers);

    // Small PE counts exceed single-PE SRAM capacity by design; the
    // paper's simulator swept them anyway. Warn-only mode.
    Logger::setQuiet(true);

    for (const auto &bench_def : workloads::suite()) {
        table.row().add(bench_def.name);
        double base_cycles = 0.0;
        for (unsigned n : pe_counts) {
            core::EieConfig config;
            config.n_pe = n;
            config.enforce_capacity = false;
            const auto result = runner.runEie(bench_def, config);
            const auto cycles =
                static_cast<double>(result.stats.cycles);
            if (n == 1)
                base_cycles = cycles;
            table.addRatio(base_cycles / cycles, 1);
        }
    }
    Logger::setQuiet(false);

    std::cout << "=== Figure 11: speedup vs #PEs (normalised to 1 PE) "
                 "===\n";
    table.print(std::cout);
    std::cout << "\nPaper: near-linear for all benchmarks except "
                 "NT-We, which saturates (only 600 output rows to "
                 "spread).\n";
    return 0;
}
