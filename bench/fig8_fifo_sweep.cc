/**
 * @file
 * Regenerates Figure 8: load-balance efficiency vs activation-FIFO
 * depth (1..256 in powers of two) on all nine benchmarks with 64 PEs.
 * Efficiency = ALU-busy cycles / total cycles, the paper's
 * "1 - bubble cycles / total computation cycles". The paper picks
 * depth 8 as the knee; the same knee must appear here.
 */

#include <iostream>

#include "common/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;

    const std::vector<unsigned> depths = {1, 2, 4, 8, 16, 32, 64, 128,
                                          256};
    std::vector<std::string> headers{"Benchmark"};
    for (unsigned d : depths)
        headers.push_back("FIFO=" + std::to_string(d));
    eie::TextTable table(headers);

    for (const auto &bench_def : workloads::suite()) {
        core::EieConfig base;
        const auto plan = runner.plan(bench_def, base);

        table.row().add(bench_def.name);
        for (unsigned depth : depths) {
            core::EieConfig config;
            config.fifo_depth = depth;
            const auto result =
                runner.runEieWithPlan(bench_def, config, plan);
            table.addPercent(result.stats.loadBalance());
        }
    }

    std::cout << "=== Figure 8: load balance efficiency vs FIFO depth "
                 "(64 PEs) ===\n";
    table.print(std::cout);
    std::cout << "\nPaper: ~50% at depth 1, diminishing returns beyond "
                 "depth 8 (the chosen design point); NT-We is the "
                 "outlier (600 rows over 64 PEs leaves ~1 entry per "
                 "PE per column).\n";
    return 0;
}
