/**
 * @file
 * Regenerates Table I: energy of basic operations in a 45 nm CMOS
 * process, plus the width-scaled costs the EIE datapath relies on
 * (16-bit fixed-point MAC, 4-bit index decode amortisation).
 */

#include <iostream>

#include "common/table.hh"
#include "energy/op_energy.hh"

int
main()
{
    using eie::energy::OpEnergy;

    std::cout << "=== Table I: energy per operation, 45nm CMOS ===\n";
    eie::TextTable table({"Operation", "Energy [pJ]", "Relative Cost"});
    auto add = [&](const char *op, double pj) {
        table.row().add(op).add(pj, 2).add(
            OpEnergy::relativeCost(pj), 0);
    };
    add("32 bit int ADD", OpEnergy::int_add_32);
    add("32 bit float ADD", OpEnergy::float_add_32);
    add("32 bit int MULT", OpEnergy::int_mult_32);
    add("32 bit float MULT", OpEnergy::float_mult_32);
    add("32 bit 32KB SRAM", OpEnergy::sram_read_32b_32k);
    add("32 bit DRAM", OpEnergy::dram_read_32b);
    table.print(std::cout);

    std::cout << "\nDRAM/SRAM ratio: "
              << OpEnergy::dram_read_32b / OpEnergy::sram_read_32b_32k
              << "x (paper: 128x); DRAM/intADD ratio: "
              << OpEnergy::dram_read_32b / OpEnergy::int_add_32
              << "x (paper: 3 orders of magnitude)\n";

    std::cout << "\n=== Width-scaled arithmetic (Figure 10 energy "
                 "bars) ===\n";
    eie::TextTable widths({"Width", "int MULT [pJ]", "int ADD [pJ]",
                           "fixed MAC [pJ]"});
    for (unsigned bits : {8u, 16u, 32u}) {
        widths.row()
            .add(std::to_string(bits) + "b")
            .add(OpEnergy::intMult(bits), 3)
            .add(OpEnergy::intAdd(bits), 3)
            .add(OpEnergy::fixedMac(bits), 3);
    }
    widths.print(std::cout);
    std::cout << "16b fixed multiply vs 32b fixed: "
              << OpEnergy::int_mult_32 / OpEnergy::intMult(16)
              << "x less energy (paper: 5x)\n"
              << "16b fixed multiply vs 32b float: "
              << OpEnergy::float_mult_32 / OpEnergy::intMult(16)
              << "x less energy (paper: 6.2x)\n";
    return 0;
}
