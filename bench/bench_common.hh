/**
 * @file
 * Shared plumbing for the table/figure benches: per-benchmark wall
 * clock on every platform model plus the simulated EIE, small
 * statistics helpers, and the one JSON emitter every BENCH_*.json
 * file goes through (one schema, one formatting, one failure mode).
 */

#ifndef EIE_BENCH_BENCH_COMMON_HH
#define EIE_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "client/client.hh"
#include "common/logging.hh"
#include "core/config.hh"
#include "core/kernel/variant.hh"
#include "core/run_stats.hh"
#include "energy/pe_model.hh"
#include "platforms/roofline.hh"
#include "workloads/suite.hh"

namespace eie::bench {

/**
 * A minimal ordered JSON value for benchmark result files. Insertion
 * order is preserved so the emitted files diff cleanly across runs;
 * numbers keep their integer/real identity. Build with set()/push(),
 * then writeBenchJson() the root object.
 */
class Json
{
  public:
    Json() : value_(Object{}) {}
    /* implicit */ Json(double v) : value_(v) {}
    /* implicit */ Json(std::uint64_t v) : value_(v) {}
    /* implicit */ Json(unsigned v)
        : value_(static_cast<std::uint64_t>(v)) {}
    /* implicit */ Json(bool v) : value_(v) {}
    /* implicit */ Json(std::string v) : value_(std::move(v)) {}
    /* implicit */ Json(const char *v) : value_(std::string(v)) {}

    /** An empty array value. */
    static Json
    array()
    {
        Json json;
        json.value_ = Array{};
        return json;
    }

    /** Object field (insertion-ordered; duplicate keys not checked). */
    Json &
    set(const std::string &key, Json value)
    {
        fatal_if(!std::holds_alternative<Object>(value_),
                 "Json::set on a non-object");
        std::get<Object>(value_).emplace_back(
            key, std::make_shared<Json>(std::move(value)));
        return *this;
    }

    /** Array element. */
    Json &
    push(Json value)
    {
        fatal_if(!std::holds_alternative<Array>(value_),
                 "Json::push on a non-array");
        std::get<Array>(value_).push_back(
            std::make_shared<Json>(std::move(value)));
        return *this;
    }

    void
    write(std::ostream &os, unsigned indent = 0) const
    {
        const std::string pad(2 * indent, ' ');
        const std::string inner(2 * (indent + 1), ' ');
        if (const auto *object = std::get_if<Object>(&value_)) {
            if (object->empty()) {
                os << "{}";
                return;
            }
            os << "{\n";
            for (std::size_t i = 0; i < object->size(); ++i) {
                os << inner;
                writeString(os, (*object)[i].first);
                os << ": ";
                (*object)[i].second->write(os, indent + 1);
                os << (i + 1 < object->size() ? "," : "") << "\n";
            }
            os << pad << "}";
        } else if (const auto *array = std::get_if<Array>(&value_)) {
            if (array->empty()) {
                os << "[]";
                return;
            }
            os << "[\n";
            for (std::size_t i = 0; i < array->size(); ++i) {
                os << inner;
                (*array)[i]->write(os, indent + 1);
                os << (i + 1 < array->size() ? "," : "") << "\n";
            }
            os << pad << "]";
        } else if (const auto *real = std::get_if<double>(&value_)) {
            os << *real;
        } else if (const auto *integer =
                       std::get_if<std::uint64_t>(&value_)) {
            os << *integer;
        } else if (const auto *boolean = std::get_if<bool>(&value_)) {
            os << (*boolean ? "true" : "false");
        } else {
            writeString(os, std::get<std::string>(value_));
        }
    }

  private:
    static void
    writeString(std::ostream &os, const std::string &text)
    {
        os << '"';
        for (const char c : text) {
            if (c == '"' || c == '\\')
                os << '\\' << c;
            else if (static_cast<unsigned char>(c) < 0x20)
                os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                   << "0123456789abcdef"[c & 0xf];
            else
                os << c;
        }
        os << '"';
    }

    using Object =
        std::vector<std::pair<std::string, std::shared_ptr<Json>>>;
    using Array = std::vector<std::shared_ptr<Json>>;

    std::variant<Object, Array, double, std::uint64_t, bool,
                 std::string>
        value_;
};

/** Schema revision stamped into every BENCH_*.json; bump when any
 *  emitter changes a field's meaning so trajectory tooling can tell
 *  comparable runs apart. v3 adds the compiler/march/kernel_simd
 *  stamps and per-variant throughput series. */
inline constexpr std::uint64_t kBenchSchemaVersion = 3;

/** The -march baseline this binary was compiled against (compile
 *  time; the runtime SIMD dispatch may exceed it via function
 *  multiversioning — see kernel_simd). */
inline const char *
compileMarch()
{
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__SSE4_1__)
    return "sse4.1";
#elif defined(__x86_64__)
    return "x86-64 baseline";
#else
    return "generic";
#endif
}

/**
 * Write @p root to @p path (fatal on failure) and log the path.
 * Every file is stamped with the schema version, the machine's
 * hardware thread count, the compiler and -march baseline, and the
 * runtime-dispatched SIMD ISA of the kernel's vector variant, so
 * perf trajectories across PRs compare like with like (a 1-core CI
 * box and a 32-core AVX2 workstation produce very different
 * numbers).
 */
inline void
writeBenchJson(const std::string &path, Json root)
{
    root.set("schema_version", kBenchSchemaVersion)
        .set("hardware_threads",
             static_cast<std::uint64_t>(
                 std::thread::hardware_concurrency()))
        .set("compiler", __VERSION__)
        .set("march", compileMarch())
        .set("kernel_simd", core::kernel::simdIsaName());
    std::ofstream file(path);
    fatal_if(!file, "cannot write %s", path.c_str());
    root.write(file);
    file << "\n";
    std::cout << "wrote " << path << "\n";
}

/**
 * The client-transport stamp of one BENCH_client.json series: which
 * endpoint string and resolved transport produced the numbers, so a
 * local-loopback run and a cross-host run never get compared as the
 * same series. Every series the client-overhead bench emits goes
 * through here (one stamp, one schema).
 */
inline Json
clientTransportStamp(const client::Client &client)
{
    Json stamp;
    stamp.set("transport", client.transport())
        .set("endpoint", client.endpoint());
    return stamp;
}

/** All Table IV cells for one benchmark (microseconds per frame). */
struct BenchTimes
{
    // batch 1
    double cpu_dense = 0, cpu_sparse = 0;
    double gpu_dense = 0, gpu_sparse = 0;
    double mgpu_dense = 0, mgpu_sparse = 0;
    // batch 64
    double cpu_dense64 = 0, cpu_sparse64 = 0;
    double gpu_dense64 = 0, gpu_sparse64 = 0;
    double mgpu_dense64 = 0, mgpu_sparse64 = 0;
    // EIE (simulated)
    double eie_theoretical = 0, eie_actual = 0;
    core::RunStats eie_stats;
};

/** Compute every platform's time for @p bench; runs the simulator. */
inline BenchTimes
computeTimes(workloads::SuiteRunner &runner,
             const workloads::Benchmark &bench,
             const core::EieConfig &config)
{
    const auto workload = workloads::workloadOf(bench);
    const platforms::RooflinePlatform cpu(platforms::cpuCoreI7Params());
    const platforms::RooflinePlatform gpu(platforms::gpuTitanXParams());
    const platforms::RooflinePlatform mgpu(
        platforms::mobileGpuTegraK1Params());

    BenchTimes t;
    t.cpu_dense = cpu.timeUs(workload, false, 1);
    t.cpu_sparse = cpu.timeUs(workload, true, 1);
    t.gpu_dense = gpu.timeUs(workload, false, 1);
    t.gpu_sparse = gpu.timeUs(workload, true, 1);
    t.mgpu_dense = mgpu.timeUs(workload, false, 1);
    t.mgpu_sparse = mgpu.timeUs(workload, true, 1);
    t.cpu_dense64 = cpu.timeUs(workload, false, 64);
    t.cpu_sparse64 = cpu.timeUs(workload, true, 64);
    t.gpu_dense64 = gpu.timeUs(workload, false, 64);
    t.gpu_sparse64 = gpu.timeUs(workload, true, 64);
    t.mgpu_dense64 = mgpu.timeUs(workload, false, 64);
    t.mgpu_sparse64 = mgpu.timeUs(workload, true, 64);

    const auto result = runner.runEie(bench, config);
    t.eie_stats = result.stats;
    t.eie_theoretical = result.stats.theoreticalTimeUs();
    t.eie_actual = result.stats.timeUs();
    return t;
}

/** EIE power in watts using the run's measured activity. */
inline double
eiePowerWatts(const core::EieConfig &config, const core::RunStats &stats)
{
    return energy::acceleratorPowerWatts(
        config, energy::PeActivity::fromRun(stats));
}

/** Geometric mean of a series of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return values.empty() ? 0.0
                          : std::exp(log_sum /
                                     static_cast<double>(values.size()));
}

} // namespace eie::bench

#endif // EIE_BENCH_BENCH_COMMON_HH
