/**
 * @file
 * Shared plumbing for the table/figure benches: per-benchmark wall
 * clock on every platform model plus the simulated EIE, and small
 * statistics helpers.
 */

#ifndef EIE_BENCH_BENCH_COMMON_HH
#define EIE_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <vector>

#include "core/config.hh"
#include "core/run_stats.hh"
#include "energy/pe_model.hh"
#include "platforms/roofline.hh"
#include "workloads/suite.hh"

namespace eie::bench {

/** All Table IV cells for one benchmark (microseconds per frame). */
struct BenchTimes
{
    // batch 1
    double cpu_dense = 0, cpu_sparse = 0;
    double gpu_dense = 0, gpu_sparse = 0;
    double mgpu_dense = 0, mgpu_sparse = 0;
    // batch 64
    double cpu_dense64 = 0, cpu_sparse64 = 0;
    double gpu_dense64 = 0, gpu_sparse64 = 0;
    double mgpu_dense64 = 0, mgpu_sparse64 = 0;
    // EIE (simulated)
    double eie_theoretical = 0, eie_actual = 0;
    core::RunStats eie_stats;
};

/** Compute every platform's time for @p bench; runs the simulator. */
inline BenchTimes
computeTimes(workloads::SuiteRunner &runner,
             const workloads::Benchmark &bench,
             const core::EieConfig &config)
{
    const auto workload = workloads::workloadOf(bench);
    const platforms::RooflinePlatform cpu(platforms::cpuCoreI7Params());
    const platforms::RooflinePlatform gpu(platforms::gpuTitanXParams());
    const platforms::RooflinePlatform mgpu(
        platforms::mobileGpuTegraK1Params());

    BenchTimes t;
    t.cpu_dense = cpu.timeUs(workload, false, 1);
    t.cpu_sparse = cpu.timeUs(workload, true, 1);
    t.gpu_dense = gpu.timeUs(workload, false, 1);
    t.gpu_sparse = gpu.timeUs(workload, true, 1);
    t.mgpu_dense = mgpu.timeUs(workload, false, 1);
    t.mgpu_sparse = mgpu.timeUs(workload, true, 1);
    t.cpu_dense64 = cpu.timeUs(workload, false, 64);
    t.cpu_sparse64 = cpu.timeUs(workload, true, 64);
    t.gpu_dense64 = gpu.timeUs(workload, false, 64);
    t.gpu_sparse64 = gpu.timeUs(workload, true, 64);
    t.mgpu_dense64 = mgpu.timeUs(workload, false, 64);
    t.mgpu_sparse64 = mgpu.timeUs(workload, true, 64);

    const auto result = runner.runEie(bench, config);
    t.eie_stats = result.stats;
    t.eie_theoretical = result.stats.theoreticalTimeUs();
    t.eie_actual = result.stats.timeUs();
    return t;
}

/** EIE power in watts using the run's measured activity. */
inline double
eiePowerWatts(const core::EieConfig &config, const core::RunStats &stats)
{
    return energy::acceleratorPowerWatts(
        config, energy::PeActivity::fromRun(stats));
}

/** Geometric mean of a series of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return values.empty() ? 0.0
                          : std::exp(log_sum /
                                     static_cast<double>(values.size()));
}

} // namespace eie::bench

#endif // EIE_BENCH_BENCH_COMMON_HH
