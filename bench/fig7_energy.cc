/**
 * @file
 * Regenerates Figure 7: energy efficiency (inverse energy per frame)
 * of CPU/GPU/mGPU dense and compressed, and EIE, normalised to CPU
 * dense at batch 1. Platform energy = measured power x modelled time
 * (exactly the paper's methodology); EIE energy = modelled
 * accelerator power at the run's measured activity x simulated time.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config;

    const platforms::RooflinePlatform cpu(platforms::cpuCoreI7Params());
    const platforms::RooflinePlatform gpu(platforms::gpuTitanXParams());
    const platforms::RooflinePlatform mgpu(
        platforms::mobileGpuTegraK1Params());

    eie::TextTable table({"Benchmark", "CPU Dense", "CPU Compressed",
                          "GPU Dense", "GPU Compressed", "mGPU Dense",
                          "mGPU Compressed", "EIE"});

    std::vector<double> col[7];
    for (const auto &bench_def : workloads::suite()) {
        const auto t =
            bench::computeTimes(runner, bench_def, config);

        const double e_cpu_dense = t.cpu_dense * cpu.powerWatts();
        const double energies[7] = {
            e_cpu_dense,
            t.cpu_sparse * cpu.powerWatts(),
            t.gpu_dense * gpu.powerWatts(),
            t.gpu_sparse * gpu.powerWatts(),
            t.mgpu_dense * mgpu.powerWatts(),
            t.mgpu_sparse * mgpu.powerWatts(),
            t.eie_actual *
                bench::eiePowerWatts(config, t.eie_stats),
        };

        table.row().add(bench_def.name);
        for (int c = 0; c < 7; ++c) {
            const double efficiency = e_cpu_dense / energies[c];
            table.addRatio(efficiency, c == 6 ? 0 : 1);
            col[c].push_back(efficiency);
        }
    }
    table.row().add("Geo Mean");
    for (int c = 0; c < 7; ++c)
        table.addRatio(bench::geomean(col[c]), c == 6 ? 0 : 1);

    std::cout << "=== Figure 7: energy efficiency over CPU dense "
                 "(batch 1) ===\n";
    table.print(std::cout);
    std::cout << "\nPaper geomeans: CPU compressed 6x, GPU dense 7x, "
                 "GPU compressed 23x, mGPU dense 9x, mGPU compressed "
                 "36x, EIE 24,207x.\n"
                 "Theoretical decomposition (§VI-B): 120x (SRAM vs "
                 "DRAM) x 10x (weight sparsity) x 8x (weight sharing) "
                 "x 3x (activation sparsity) = 28,800x.\n";
    return 0;
}
