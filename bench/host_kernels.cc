/**
 * @file
 * Google-benchmark timing of the runnable host kernels on an
 * Alex-7-shaped layer (4096x4096 at 9% density, 35% activation
 * density) — the honest counterpart of the roofline models. Confirms
 * §VI-A's observation that compression alone on a general-purpose
 * processor buys only a small factor (the paper: ~3x on CPU), far
 * from EIE's dedicated-logic gains.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "compress/compressed_layer.hh"
#include "nn/generate.hh"
#include "platforms/host_kernels.hh"

namespace {

using namespace eie;

constexpr std::size_t kRows = 4096;
constexpr std::size_t kCols = 4096;
constexpr double kWeightDensity = 0.09;
constexpr double kActDensity = 0.35;

struct Fixture
{
    nn::SparseMatrix sparse;
    nn::Matrix dense;
    platforms::CsrMatrix csr;
    compress::CompressedLayer layer;
    nn::Vector input;
    std::vector<float> output;

    static Fixture &
    instance()
    {
        static Fixture f;
        return f;
    }

  private:
    Fixture()
        : sparse(makeWeights()), dense(sparse.toDense()),
          csr(platforms::CsrMatrix::fromSparse(sparse)),
          layer(makeLayer(sparse)), input(makeInput()),
          output(kRows, 0.0f)
    {}

    static nn::SparseMatrix
    makeWeights()
    {
        Rng rng(77);
        nn::WeightGenOptions opts;
        opts.density = kWeightDensity;
        return nn::makeSparseWeights(kRows, kCols, opts, rng);
    }

    static compress::CompressedLayer
    makeLayer(const nn::SparseMatrix &w)
    {
        compress::CompressionOptions opts;
        opts.interleave.n_pe = 64;
        return compress::CompressedLayer::compress("alex7", w, opts);
    }

    static nn::Vector
    makeInput()
    {
        Rng rng(78);
        return nn::makeActivations(kCols, kActDensity, rng);
    }
};

void
BM_DenseGemv(benchmark::State &state)
{
    auto &f = Fixture::instance();
    for (auto _ : state) {
        platforms::denseGemv(f.dense, f.input, f.output);
        benchmark::DoNotOptimize(f.output.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kRows * kCols);
}
BENCHMARK(BM_DenseGemv)->Unit(benchmark::kMicrosecond);

void
BM_CsrSpmv(benchmark::State &state)
{
    auto &f = Fixture::instance();
    for (auto _ : state) {
        platforms::csrSpmv(f.csr, f.input, f.output);
        benchmark::DoNotOptimize(f.output.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(f.csr.values.size()));
}
BENCHMARK(BM_CsrSpmv)->Unit(benchmark::kMicrosecond);

void
BM_CscCodebookSpmv(benchmark::State &state)
{
    auto &f = Fixture::instance();
    for (auto _ : state) {
        platforms::cscCodebookSpmv(f.layer.storage(), f.input,
                                   f.output);
        benchmark::DoNotOptimize(f.output.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(f.layer.storage().totalEntries()));
}
BENCHMARK(BM_CscCodebookSpmv)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
