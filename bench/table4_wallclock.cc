/**
 * @file
 * Regenerates Table IV: per-frame wall clock (microseconds) of CPU /
 * GPU / mobile GPU on dense and compressed models at batch 1 and 64,
 * and EIE's theoretical vs simulated ("actual") time. The paper's
 * measured values appear in EXPERIMENTS.md next to these.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config; // 64 PE, 800 MHz

    eie::TextTable table({"Platform", "Batch", "Matrix", "Alex-6",
                          "Alex-7", "Alex-8", "VGG-6", "VGG-7",
                          "VGG-8", "NT-We", "NT-Wd", "NT-LSTM"});

    std::vector<bench::BenchTimes> times;
    for (const auto &bench_def : workloads::suite())
        times.push_back(
            bench::computeTimes(runner, bench_def, config));

    auto row = [&](const char *platform, const char *batch,
                   const char *matrix, auto get) {
        table.row().add(platform).add(batch).add(matrix);
        for (const auto &t : times)
            table.add(get(t), 1);
    };

    using BT = bench::BenchTimes;
    row("CPU (i7-5930k)", "1", "dense",
        [](const BT &t) { return t.cpu_dense; });
    row("", "1", "sparse", [](const BT &t) { return t.cpu_sparse; });
    row("", "64", "dense", [](const BT &t) { return t.cpu_dense64; });
    row("", "64", "sparse", [](const BT &t) { return t.cpu_sparse64; });
    row("GPU (Titan X)", "1", "dense",
        [](const BT &t) { return t.gpu_dense; });
    row("", "1", "sparse", [](const BT &t) { return t.gpu_sparse; });
    row("", "64", "dense", [](const BT &t) { return t.gpu_dense64; });
    row("", "64", "sparse", [](const BT &t) { return t.gpu_sparse64; });
    row("mGPU (Tegra K1)", "1", "dense",
        [](const BT &t) { return t.mgpu_dense; });
    row("", "1", "sparse", [](const BT &t) { return t.mgpu_sparse; });
    row("", "64", "dense", [](const BT &t) { return t.mgpu_dense64; });
    row("", "64", "sparse",
        [](const BT &t) { return t.mgpu_sparse64; });
    row("EIE (simulated)", "1", "Theoretical",
        [](const BT &t) { return t.eie_theoretical; });
    row("", "1", "Actual", [](const BT &t) { return t.eie_actual; });

    std::cout << "=== Table IV: wall clock time per frame (us) ===\n";
    table.print(std::cout);

    // §VI-A: "The actual computation time is around 10% more than the
    // theoretical computation time due to load imbalance."
    std::vector<double> ratios;
    for (const auto &t : times)
        ratios.push_back(t.eie_actual / t.eie_theoretical);
    std::cout << "\nEIE actual/theoretical geomean: "
              << bench::geomean(ratios)
              << "x (paper: ~1.1x)\n";
    return 0;
}
