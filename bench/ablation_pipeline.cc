/**
 * @file
 * Ablation of the PE micro-architecture choices DESIGN.md calls out:
 * the accumulator bypass path (§VI: added to avoid pipeline hazards)
 * and the LNZD broadcast latency (§VII-B: "not on the critical path
 * and can be pipelined"). Each variant runs the full suite on the
 * cycle-accurate simulator at 64 PEs.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;

    std::cout << "=== Ablation: accumulator bypass and LNZD latency "
                 "(64 PEs, cycles) ===\n";
    eie::TextTable table({"Benchmark", "baseline", "no bypass",
                          "no-bypass penalty", "lnzd latency x8",
                          "latency penalty"});

    std::vector<double> bypass_penalties, latency_penalties;
    for (const auto &bench_def : workloads::suite()) {
        core::EieConfig base;
        const auto plan = runner.plan(bench_def, base);
        const auto baseline =
            runner.runEieWithPlan(bench_def, base, plan);

        core::EieConfig no_bypass = base;
        no_bypass.enable_bypass = false;
        const auto without =
            runner.runEieWithPlan(bench_def, no_bypass, plan);

        // An 8x deeper broadcast pipeline (e.g. much larger arrays or
        // slower interconnect): latency is paid once per pass, so the
        // penalty must be negligible.
        core::EieConfig slow_lnzd = base;
        slow_lnzd.lnzd_fanin = 2; // deeper tree: 7 levels for 64 PEs
        const auto slow =
            runner.runEieWithPlan(bench_def, slow_lnzd, plan);

        const double bypass_penalty =
            static_cast<double>(without.stats.cycles) /
            static_cast<double>(baseline.stats.cycles);
        const double latency_penalty =
            static_cast<double>(slow.stats.cycles) /
            static_cast<double>(baseline.stats.cycles);
        bypass_penalties.push_back(bypass_penalty);
        latency_penalties.push_back(latency_penalty);

        table.row()
            .add(bench_def.name)
            .add(baseline.stats.cycles)
            .add(without.stats.cycles)
            .addRatio(bypass_penalty, 3)
            .add(slow.stats.cycles)
            .addRatio(latency_penalty, 3);
    }
    table.print(std::cout);

    std::cout << "\nGeomean penalties: no-bypass "
              << bench::geomean(bypass_penalties)
              << "x, deep-LNZD " << bench::geomean(latency_penalties)
              << "x. The bypass matters when consecutive columns hit "
                 "the same accumulator; broadcast latency hides "
                 "behind the FIFOs as §VII-B argues.\n";
    return 0;
}
