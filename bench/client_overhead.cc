/**
 * @file
 * Client-overhead series: what the typed eie::client front door
 * costs per request over each transport, against the raw backend
 * sweep as the floor.
 *
 * One synthetic FC layer is published to a scratch registry and
 * served four ways — the direct compiled backend (no client at
 * all), a `local:` endpoint, a `cluster:` endpoint and a `tcp://`
 * endpoint against an in-process loopback daemon — under the same
 * pipelined single-frame workload. A streaming-session series then
 * measures per-step latency of the LSTM path on the in-process and
 * wire transports. Results land in BENCH_client.json, every series
 * stamped with its transport and endpoint via
 * bench::clientTransportStamp so trajectories compare like with
 * like.
 *
 * On a loopback the tcp series measures protocol + socket overhead,
 * not network latency; hardware_threads/compiler stamps (schema v3)
 * travel in the file as usual.
 */

#include <chrono>
#include <deque>
#include <filesystem>
#include <iostream>

#include <unistd.h>

#include "bench_common.hh"
#include "client/client.hh"
#include "common/random.hh"
#include "compress/compressed_layer.hh"
#include "core/functional.hh"
#include "engine/backend.hh"
#include "nn/generate.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

constexpr std::size_t kRows = 1024;
constexpr std::size_t kCols = 1024;
constexpr double kDensity = 0.09;
constexpr std::size_t kRequests = 2000;
constexpr std::size_t kWindow = 64;
constexpr std::size_t kSessionSteps = 200;
// LSTM model: H = 64, X = 64 -> (4H) x (X+H+1) = 256 x 129.
constexpr std::size_t kLstmHidden = 64;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Pipelined single-frame requests; returns wall seconds. */
double
drive(client::Client &client, const std::string &model,
      const std::vector<std::vector<std::int64_t>> &inputs)
{
    std::deque<std::future<client::InferenceResult>> in_flight;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRequests; ++i) {
        while (in_flight.size() >= kWindow) {
            const client::InferenceResult result =
                in_flight.front().get();
            fatal_if(!result.ok(), "request failed: %s",
                     result.status.toString().c_str());
            in_flight.pop_front();
        }
        client::InferenceRequest request;
        request.model = model;
        request.fixed.push_back(inputs[i % inputs.size()]);
        in_flight.push_back(client.submit(std::move(request)));
    }
    while (!in_flight.empty()) {
        fatal_if(!in_flight.front().get().ok(), "request failed");
        in_flight.pop_front();
    }
    return secondsSince(start);
}

} // namespace

int
main()
{
    core::EieConfig config; // 64 PE
    const std::uint64_t seed = 2016;

    // Scratch registry with the FC layer and the LSTM gate layer.
    const fs::path dir = fs::temp_directory_path() /
        ("eie_bench_client_" + std::to_string(::getpid()));
    serve::ModelRegistry registry(dir.string(), config);
    {
        Rng rng(seed);
        nn::WeightGenOptions wopts;
        wopts.density = kDensity;
        compress::CompressionOptions copts;
        copts.interleave.n_pe = config.n_pe;
        registry.publish(
            "fc", 1,
            compress::CompressedLayer::compress(
                "fc", nn::makeSparseWeights(kRows, kCols, wopts, rng),
                copts)
                .storage());
        registry.publish(
            "lstm", 1,
            compress::CompressedLayer::compress(
                "lstm",
                nn::makeSparseWeights(4 * kLstmHidden,
                                      2 * kLstmHidden + 1, wopts,
                                      rng),
                copts)
                .storage());
    }

    // Deterministic single-frame inputs.
    const core::FunctionalModel functional(config);
    std::vector<std::vector<std::int64_t>> inputs;
    for (std::size_t i = 0; i < 64; ++i) {
        Rng rng(seed + 77 * i + 1);
        inputs.push_back(functional.quantizeInput(
            nn::makeActivations(kCols, 0.35, rng)));
    }

    // The floor: the raw compiled backend, same frames, no client,
    // no batcher — the per-frame cost everything else is charged
    // against.
    const auto loaded = registry.load("fc");
    fatal_if(!loaded, "registry lost the fc model");
    const auto direct =
        engine::makeBackend("compiled", config, {&loaded->plan()});
    const auto direct_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRequests; ++i)
        direct->run(inputs[i % inputs.size()]);
    const double direct_s = secondsSince(direct_start);
    const double direct_us = 1e6 * direct_s /
        static_cast<double>(kRequests);
    std::cout << "direct compiled backend: " << direct_us
              << " us/frame\n";

    // Loopback daemon for the tcp series.
    serve::ServingDirectory directory(registry,
                                      serve::ClusterOptions{});
    serve::TcpServer server(directory);
    server.start();

    client::ClientOptions options;
    options.config = config;
    const std::vector<std::string> endpoints = {
        "local:compiled,dir=" + dir.string(),
        "cluster:" + dir.string() + ",shards=1",
        "tcp://127.0.0.1:" + std::to_string(server.port()),
    };

    bench::Json series = bench::Json::array();
    for (const std::string &endpoint : endpoints) {
        auto client = client::Client::connectOrDie(endpoint, options);
        const double wall_s = drive(*client, "fc", inputs);
        const double rps =
            static_cast<double>(kRequests) / wall_s;
        const double us_per_request = 1e6 * wall_s /
            static_cast<double>(kRequests);

        bench::Json row = bench::clientTransportStamp(*client);
        row.set("requests",
                static_cast<std::uint64_t>(kRequests))
            .set("window", static_cast<std::uint64_t>(kWindow))
            .set("requests_per_s", rps)
            .set("us_per_request", us_per_request)
            .set("overhead_us_vs_direct",
                 us_per_request - direct_us);
        client::EndpointStats stats;
        if (client->stats(stats).ok() && stats.requests > 0) {
            row.set("p50_latency_us", stats.p50_latency_us)
                .set("p99_latency_us", stats.p99_latency_us)
                .set("mean_batch", stats.mean_batch);
        }
        std::cout << client->transport() << ": " << rps
                  << " requests/s (" << us_per_request
                  << " us/request, +"
                  << us_per_request - direct_us
                  << " us over direct)\n";
        series.push(std::move(row));
        client->close();
    }

    // Streaming-session series: per-step latency of the recurrent
    // path (strictly sequential, so this is pure round-trip cost).
    // A lone sequential stream is exactly the traffic the adaptive
    // micro-batcher exists for: the forming window shrinks toward
    // ServerOptions::min_delay instead of charging every step the
    // full max_delay. A fixed-window run of the local endpoint rides
    // along as the control.
    auto runSession = [&](const std::string &endpoint,
                          const client::ClientOptions &session_options,
                          const char *label) {
        auto client =
            client::Client::connectOrDie(endpoint, session_options);
        client::Status status;
        const auto session = client->openSession("lstm", 0, status);
        fatal_if(!session, "openSession(%s): %s", endpoint.c_str(),
                 status.toString().c_str());
        Rng rng(seed ^ 0x15150ull);
        const nn::Vector x =
            nn::makeActivations(session->inputSize(), 0.7, rng);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t t = 0; t < kSessionSteps; ++t)
            fatal_if(!session->step(x).ok(), "session step failed");
        const double step_us = 1e6 * secondsSince(start) /
            static_cast<double>(kSessionSteps);

        bench::Json row = bench::clientTransportStamp(*client);
        row.set("steps", static_cast<std::uint64_t>(kSessionSteps))
            .set("us_per_step", step_us)
            .set("adaptive_delay",
                 session_options.server.adaptive_delay)
            .set("min_delay_us",
                 static_cast<std::uint64_t>(
                     session_options.server.min_delay.count()));
        if (label)
            row.set("label", label);
        std::cout << client->transport()
                  << (label ? std::string(" (") + label + ")" : "")
                  << " session: " << step_us << " us/step\n";
        client->close();
        return std::make_pair(std::move(row), step_us);
    };

    bench::Json session_series = bench::Json::array();
    double adaptive_step_us = 0.0;
    for (const std::string &endpoint : endpoints) {
        auto [row, step_us] = runSession(endpoint, options, nullptr);
        if (endpoint == endpoints.front())
            adaptive_step_us = step_us;
        session_series.push(std::move(row));
    }
    // The control: same local endpoint, micro-batcher pinned at the
    // fixed max_delay forming window.
    double fixed_step_us = 0.0;
    {
        client::ClientOptions fixed_options = options;
        fixed_options.server.adaptive_delay = false;
        auto [row, step_us] =
            runSession(endpoints.front(), fixed_options, "fixed-window");
        fixed_step_us = step_us;
        session_series.push(std::move(row));
    }
    std::cout << "adaptive forming window: " << adaptive_step_us
              << " us/step vs " << fixed_step_us
              << " us/step fixed ("
              << (adaptive_step_us > 0.0
                      ? fixed_step_us / adaptive_step_us
                      : 0.0)
              << "x)\n";

    server.stop();
    directory.stopAll();

    bench::Json root;
    // Sequential session steps pay the micro-batcher's forming
    // window (a lone request waits max_delay before dispatch), so
    // the policy travels with the numbers.
    root.set("benchmark", "client_overhead")
        .set("max_delay_us",
             static_cast<std::uint64_t>(
                 engine::ServerOptions{}.max_delay.count()))
        .set("min_delay_us",
             static_cast<std::uint64_t>(
                 engine::ServerOptions{}.min_delay.count()))
        .set("adaptive_delay", engine::ServerOptions{}.adaptive_delay)
        .set("session_fixed_over_adaptive",
             adaptive_step_us > 0.0 ? fixed_step_us / adaptive_step_us
                                    : 0.0)
        .set("rows", static_cast<std::uint64_t>(kRows))
        .set("cols", static_cast<std::uint64_t>(kCols))
        .set("weight_density", kDensity)
        .set("n_pe", static_cast<std::uint64_t>(config.n_pe))
        .set("direct_us_per_frame", direct_us)
        .set("series", std::move(series))
        .set("session_series", std::move(session_series));
    bench::writeBenchJson("BENCH_client.json", std::move(root));

    fs::remove_all(dir);
    return 0;
}
