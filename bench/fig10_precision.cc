/**
 * @file
 * Regenerates Figure 10: prediction accuracy and multiplier energy
 * across arithmetic precisions (32-bit float, 32/16/8-bit fixed).
 *
 * Substitution (DESIGN.md §4): the paper measures AlexNet on
 * ImageNet; we train an MLP on a synthetic Gaussian-cluster task
 * tuned so float32 accuracy sits near the paper's ~80% operating
 * point, then run bit-exact fixed-point inference. The architectural
 * shape is what matters: 16-bit fixed tracks float within a fraction
 * of a percent, below that accuracy collapses, and multiplier energy
 * falls steeply with width.
 */

#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "energy/op_energy.hh"
#include "nn/trainer.hh"

int
main()
{
    using namespace eie;
    using energy::OpEnergy;

    // Tuned operating point: 3 hidden layers of 64 on a 64-dim
    // 10-class task lands float accuracy near the paper's 80.3%.
    Rng rng(3);
    const nn::ClusterTask task(64, 10, 4.5, 1.5, rng);
    const auto train = task.sample(2000, rng);
    const auto test = task.sample(500, rng);

    nn::Mlp mlp({64, 64, 64, 64, 10}, rng);
    std::cout << "training the Figure 10 classifier (25 epochs)...\n";
    for (int epoch = 0; epoch < 25; ++epoch)
        mlp.trainEpoch(train, 0.05, 16, rng);

    const double float_acc = mlp.accuracy(test);

    struct Point
    {
        const char *name;
        double accuracy;
        double mult_energy_pj;
        const char *paper_acc;
    };
    const std::vector<Point> points = {
        {"32b Float", float_acc, OpEnergy::floatMult(32), "80.3%"},
        {"32b Int",
         mlp.accuracyQuantized(test, FixedFormat{32, 16}),
         OpEnergy::intMult(32), "~80%"},
        {"16b Int",
         mlp.accuracyQuantized(test, FixedFormat{16, 8}),
         OpEnergy::intMult(16), "79.8%"},
        {"8b Int",
         mlp.accuracyQuantized(test, FixedFormat{8, 4}),
         OpEnergy::intMult(8), "53.0%"},
    };

    std::cout << "\n=== Figure 10: accuracy and multiply energy vs "
                 "precision ===\n";
    TextTable table({"Arithmetic Precision", "Prediction Accuracy",
                     "paper", "Multiply Energy (pJ)"});
    for (const auto &p : points)
        table.row()
            .add(p.name)
            .addPercent(p.accuracy)
            .add(p.paper_acc)
            .add(p.mult_energy_pj, 2);
    table.print(std::cout);

    std::cout << "\n16-bit vs float accuracy loss: "
              << 100.0 * (float_acc - points[2].accuracy)
              << " points (paper: 0.5); 16b multiply saves "
              << OpEnergy::intMult(32) / OpEnergy::intMult(16)
              << "x over 32b fixed and "
              << OpEnergy::floatMult(32) / OpEnergy::intMult(16)
              << "x over 32b float (paper: 5x / 6.2x).\n"
                 "Note: the 8-bit collapse is milder here than on "
                 "ImageNet-scale models (see EXPERIMENTS.md).\n";
    return 0;
}
