/**
 * @file
 * Regenerates Table II: power and area of one EIE PE, broken down by
 * module, at the paper's design point (64 PEs, 800 MHz, 128KB Spmat /
 * 32KB Ptr / 2KB Act SRAM) and nominal steady-state activity. The
 * by-component-type rows of the paper (memory/clock/register/
 * combinational) are a different projection of the same total; we
 * report the by-module breakdown our model computes plus the paper's
 * published fractions for reference.
 */

#include <iostream>

#include "common/table.hh"
#include "core/config.hh"
#include "energy/pe_model.hh"

int
main()
{
    using namespace eie;

    core::EieConfig config; // paper defaults
    const energy::PeModel model(config);
    const auto area = model.areaUm2();
    const auto power =
        model.powerMw(energy::PeActivity::nominal());

    std::cout << "=== Table II: one EIE PE, 45nm, 800 MHz, nominal "
                 "activity ===\n";
    eie::TextTable table({"Module", "Power (mW)", "paper", "Area (um2)",
                          "paper"});
    auto row = [&](const char *name, double mw, const char *p_mw,
                   double um2, const char *p_um2) {
        table.row().add(name).add(mw, 3).add(p_mw).add(um2, 0).add(
            p_um2);
    };
    row("Act queue", power.act_queue, "0.112", area.act_queue, "758");
    row("PtrRead", power.ptr_read, "1.807", area.ptr_read, "121,849");
    row("SpmatRead", power.spmat_read, "4.955", area.spmat_read,
        "469,412");
    row("ArithmUnit", power.arith, "1.162", area.arith, "3,110");
    row("ActRW", power.act_rw, "1.122", area.act_rw, "18,934");
    row("filler cell", 0.0, "-", area.filler, "23,961");
    row("Total", power.total(), "9.157", area.total(), "638,024");
    table.print(std::cout);

    std::cout << "\nCritical path: " << model.criticalPathNs()
              << " ns (paper: 1.15 ns)\n";
    std::cout << "LNZD node: " << energy::PeModel::lnzd_node_mw
              << " mW, " << energy::PeModel::lnzd_node_um2
              << " um2; " << config.lnzdNodeCount()
              << " nodes for " << config.n_pe
              << " PEs (paper: 21 for 64)\n";

    std::cout << "\n64-PE accelerator: "
              << energy::acceleratorPowerWatts(
                     config, energy::PeActivity::nominal()) * 1000.0
              << " mW total (paper: ~590-600 mW), "
              << energy::acceleratorAreaMm2(config)
              << " mm2 (paper: 40.8 mm2), peak "
              << config.peakGops() << " GOP/s (paper: 102)\n";

    std::cout << "\nPaper's by-component-type fractions of the total "
                 "(for reference):\n"
                 "  memory 59.15%, clock network 20.46%, "
                 "register 11.20%, combinational 9.18%\n";
    return 0;
}
