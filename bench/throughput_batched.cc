/**
 * @file
 * Throughput and serving benchmarks of the unified execution engine
 * on a pruned 4096x4096 layer (Alex-7's shape: 9% weight density,
 * 35% activation density, 64 PEs).
 *
 * Part 1 — batched throughput: sweeps batch size x worker threads
 * through the "compiled" ExecutionBackend over a fixed set of frames,
 * checks every configuration bit-exact against the "scalar" oracle
 * backend, and writes BENCH_throughput.json (frames/sec and GOP/s per
 * point) so later PRs have a perf trajectory to regress against.
 *
 * Part 1b — batch-1 latency vs activation density on the NT-We
 * workload: the EIE activation-sparsity story. One frame at a time
 * (the latency-bound serving shape), densities 5%..100%, comparing
 * the fused dense-walk against the actsparse nonzero-queue walk;
 * the "batch1_density_series" object in BENCH_throughput.json gates
 * actsparse > fused at every density <= 50% on SIMD boxes and stamps
 * the paper-reported NT densities for context.
 *
 * Part 1c — decoded vs compressed residency on NT-We: the
 * "residency_series" object stamps frames/sec and resident stream
 * bytes for both resident forms at batch 1 and 64, and gates the
 * compressed-resident path within 15% of decoded at batch 64 on SIMD
 * boxes — the worst case for decode-on-the-fly, since NT-We's
 * decoded streams fit the LLC. The "compression" object gates the
 * footprint side: >= 1.8x smaller resident streams on the paper FC
 * shape.
 *
 * Part 2 — serving latency vs offered load: an engine::InferenceServer
 * (dynamic micro-batcher) under synthetic open-loop arrivals at
 * multiples of the serial single-vector capacity, emitting
 * BENCH_serving.json with achieved throughput and p50/p99 request
 * latency per offered load. At batch-forming load the server must
 * sustain more than the serial request rate — that is the whole point
 * of the micro-batcher.
 *
 * Part 3 — overload with and without load shedding: a batch-1 server
 * (so capacity is pinned at the serial rate) driven at 1x and 2x
 * capacity. Without admission control the 2x queue grows without
 * bound and p99 blows up with it; with max_queue set the server
 * sheds the excess and the p99 of the *accepted* requests stays
 * within a small factor of the 1x-load p99. Both series land in the
 * "overload" object of BENCH_serving.json.
 *
 * Run from the build directory:
 *
 *   ./bench_throughput_batched [--act-density D] \
 *       [throughput.json [serving.json]]
 *
 * --act-density overrides the 35% Part-1 activation density so
 * batch-1 numbers can be read at any paper-reported density.
 */

#include <chrono>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "compress/compressed_layer.hh"
#include "core/functional.hh"
#include "core/kernel/worker_pool.hh"
#include "core/plan.hh"
#include "engine/backend.hh"
#include "engine/backends.hh"
#include "engine/server.hh"
#include "nn/generate.hh"
#include "workloads/suite.hh"

namespace {

using namespace eie;

constexpr std::size_t kRows = 4096;
constexpr std::size_t kCols = 4096;
constexpr double kWeightDensity = 0.09;
constexpr double kActDensity = 0.35;
constexpr std::size_t kFrames = 64;
constexpr unsigned kRepeats = 3;
constexpr std::size_t kServeRequests = 96;

/** Part 1b: frames per density point of the batch-1 sweep, and
 *  best-of repeats (more than Part 1: single-frame timings on a
 *  shared box need more samples for a stable minimum). */
constexpr std::size_t kDensityFrames = 8;
constexpr unsigned kDensityRepeats = 9;

struct Point
{
    std::string kernel;
    std::string residency;
    std::size_t batch = 0;
    unsigned threads = 0;
    double frames_per_sec = 0.0;
    double gops = 0.0;
    double speedup = 0.0;
    bool bit_exact = false;
    std::uint64_t resident_stream_bytes = 0;
    double bytes_per_nonzero = 0.0;
};

struct ServePoint
{
    double load_factor = 0.0; ///< offered rate / serial capacity
    double offered_rps = 0.0;
    double achieved_rps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double mean_batch = 0.0;
    std::size_t max_depth = 0;
};

struct OverloadPoint
{
    std::string label;
    double load_factor = 0.0;
    std::size_t max_queue = 0; ///< 0 = unbounded
    double offered_rps = 0.0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    double achieved_rps = 0.0; ///< accepted requests / wall clock
    double p50_us = 0.0;       ///< accepted requests only
    double p99_us = 0.0;       ///< accepted requests only
    std::size_t max_depth = 0;
};

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Resident stream bytes across a compiled stack (whichever forms
 *  each layer kept). */
std::uint64_t
stackResidentBytes(const engine::CompiledStack &stack)
{
    std::uint64_t bytes = 0;
    for (const auto &layer : stack)
        bytes += layer.residentStreamBytes();
    return bytes;
}

/** Real (padding-stripped) nonzero entries across a compiled stack. */
std::uint64_t
stackEntries(const engine::CompiledStack &stack)
{
    std::uint64_t entries = 0;
    for (const auto &layer : stack)
        for (const auto &batch_tiles : layer.tiles)
            for (const auto &tile : batch_tiles)
                for (const auto &slice : tile.slices)
                    entries += layer.has_host_stream
                        ? slice.stream.entryCount()
                        : slice.compressed.entry_count;
    return entries;
}

/** The layer description both JSON files share. */
bench::Json
layerJson(const core::EieConfig &config, double act_density)
{
    bench::Json json;
    json.set("rows", kRows)
        .set("cols", kCols)
        .set("weight_density", kWeightDensity)
        .set("act_density", act_density)
        .set("n_pe", config.n_pe);
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    double act_density = kActDensity;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--act-density") {
            fatal_if(i + 1 >= argc, "--act-density requires a value");
            act_density = std::stod(argv[++i]);
            fatal_if(act_density < 0.0 || act_density > 1.0,
                     "--act-density must be in [0, 1], got %g",
                     act_density);
        } else {
            positional.push_back(arg);
        }
    }
    const std::string throughput_path =
        !positional.empty() ? positional[0] : "BENCH_throughput.json";
    const std::string serving_path =
        positional.size() > 1 ? positional[1] : "BENCH_serving.json";

    // Build the layer and plan once.
    Rng rng(2016);
    nn::WeightGenOptions wopts;
    wopts.density = kWeightDensity;
    compress::CompressionOptions copts;
    copts.interleave.n_pe = 64;
    const auto layer = compress::CompressedLayer::compress(
        "alex7_shape", nn::makeSparseWeights(kRows, kCols, wopts, rng),
        copts);

    core::EieConfig config;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel model(config);

    core::kernel::Batch frames;
    for (std::size_t b = 0; b < kFrames; ++b) {
        Rng frame_rng(4096 + 77 * b);
        frames.push_back(model.quantizeInput(
            nn::makeActivations(kCols, act_density, frame_rng)));
    }

    // ---- Part 1: batched throughput ---------------------------------

    // Scalar oracle timing: rep 0 walks the interpreter with work
    // accounting (it doubles as the reference and the GOP/s
    // denominator), further reps go through the scalar backend.
    core::kernel::Batch reference;
    double useful_gops = 0.0;
    double scalar_s = 0.0;
    {
        const auto start = std::chrono::steady_clock::now();
        for (const auto &frame : frames) {
            auto result = model.run(plan, frame);
            useful_gops += result.work.usefulGops();
            reference.push_back(std::move(result.output_raw));
        }
        scalar_s = seconds(start);
    }
    const auto scalar = engine::makeBackend("scalar", config, {&plan});
    for (unsigned rep = 1; rep < kRepeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        reference = scalar->runBatch(frames).outputs;
        scalar_s = std::min(scalar_s, seconds(start));
    }
    const double scalar_fps = kFrames / scalar_s;

    const unsigned hw_threads =
        core::kernel::WorkerPool::hardwareThreads();
    std::vector<unsigned> thread_counts{1};
    if (hw_threads > 1)
        thread_counts.push_back(hw_threads);

    // One series per kernel variant: the explicit inner loops plus
    // "auto" (what production callers get). Every point is checked
    // bit-exact against the scalar oracle.
    const std::vector<core::kernel::KernelVariant> variants{
        core::kernel::KernelVariant::Reference,
        core::kernel::KernelVariant::Vector,
        core::kernel::KernelVariant::Fused,
        core::kernel::KernelVariant::ActSparse,
        core::kernel::KernelVariant::Auto,
    };

    // One pre-decoded stack (fused stream included) shared by every
    // (variant x threads) backend: the compiled image is
    // variant-independent, the variant only picks the inner loop.
    const std::vector<const core::LayerPlan *> plan_stack{&plan};
    const auto shared_stack =
        engine::compileLayerStack(config, plan_stack);

    // The compressed-resident form of the same stack: the Huffman
    // nibble streams are the only resident copy, decoded per sweep.
    core::kernel::CompileOptions compressed_options;
    compressed_options.residency =
        core::kernel::Residency::Compressed;
    const auto compressed_stack = engine::compileLayerStack(
        config, plan_stack, compressed_options);
    const std::uint64_t stack_entries = stackEntries(*shared_stack);
    const std::uint64_t decoded_stack_bytes =
        stackResidentBytes(*shared_stack);
    const std::uint64_t compressed_stack_bytes =
        stackResidentBytes(*compressed_stack);

    std::vector<Point> points;
    auto measureSeries = [&](const engine::CompiledBackend &compiled,
                             const char *kernel_name,
                             const engine::CompiledStack &stack,
                             unsigned threads) {
        for (const std::size_t batch :
             {std::size_t{1}, std::size_t{4}, std::size_t{16},
              std::size_t{64}}) {
            core::kernel::Batch outputs;
            double batched_s = 0.0;
            for (unsigned rep = 0; rep < kRepeats; ++rep) {
                outputs.clear();
                const auto start = std::chrono::steady_clock::now();
                for (std::size_t at = 0; at < kFrames; at += batch) {
                    const core::kernel::Batch chunk(
                        frames.begin() + at,
                        frames.begin() +
                            std::min(at + batch, kFrames));
                    auto out = compiled.runBatch(chunk).outputs;
                    for (auto &frame_out : out)
                        outputs.push_back(std::move(frame_out));
                }
                const double elapsed = seconds(start);
                batched_s = rep == 0 ? elapsed
                                     : std::min(batched_s, elapsed);
            }

            Point p;
            p.kernel = kernel_name;
            p.residency =
                core::kernel::residencyName(stack.front().residency);
            p.batch = batch;
            p.threads = threads;
            p.frames_per_sec = kFrames / batched_s;
            p.gops = useful_gops / batched_s;
            p.speedup = scalar_s / batched_s;
            p.bit_exact = outputs == reference;
            p.resident_stream_bytes = stackResidentBytes(stack);
            p.bytes_per_nonzero = stack_entries > 0
                ? static_cast<double>(p.resident_stream_bytes) /
                    static_cast<double>(stack_entries)
                : 0.0;
            fatal_if(!p.bit_exact,
                     "kernel '%s', batch %zu x %u threads diverged "
                     "from the scalar oracle",
                     p.kernel.c_str(), batch, threads);
            points.push_back(p);
        }
    };

    for (const core::kernel::KernelVariant kernel : variants) {
        for (const unsigned threads : thread_counts) {
            // A multi-thread pool demotes "fused" to the reference
            // loop; re-measuring it there would just stamp reference
            // timings with the wrong label.
            if (kernel == core::kernel::KernelVariant::Fused &&
                threads > 1)
                continue;
            const engine::CompiledBackend compiled(
                plan_stack, shared_stack, threads, kernel);
            measureSeries(compiled,
                          core::kernel::kernelVariantName(kernel),
                          *shared_stack, threads);
        }
    }
    // The decode-on-the-fly series over the compressed-resident
    // stack: same inner loops, ~2x smaller resident streams.
    for (const unsigned threads : thread_counts) {
        const engine::CompiledBackend compiled(
            plan_stack, compressed_stack, threads,
            core::kernel::KernelVariant::Compressed);
        measureSeries(compiled, "compressed", *compressed_stack,
                      threads);
    }

    TextTable table({"Kernel", "Residency", "Batch", "Threads",
                     "Frames/s", "GOP/s", "Speedup", "B/nz",
                     "Exact"});
    table.row()
        .add("scalar")
        .add("-")
        .add("-")
        .add(std::uint64_t{1})
        .add(scalar_fps, 1)
        .add(useful_gops / scalar_s, 3)
        .add(1.0, 2)
        .add("-")
        .add("ref");
    for (const Point &p : points) {
        table.row()
            .add(p.kernel)
            .add(p.residency)
            .add(static_cast<std::uint64_t>(p.batch))
            .add(static_cast<std::uint64_t>(p.threads))
            .add(p.frames_per_sec, 1)
            .add(p.gops, 3)
            .add(p.speedup, 2)
            .add(p.bytes_per_nonzero, 2)
            .add(p.bit_exact ? "yes" : "NO");
    }
    std::cout << "4096x4096, 9% weights, " << 100.0 * act_density
              << "% activations, 64 PEs, " << kFrames << " frames\n";
    table.print(std::cout);

    double best = 0.0;
    for (const Point &p : points)
        best = std::max(best, p.speedup);
    std::cout << "best speedup over scalar interpreter: " << best
              << "x\n";

    // The headline regression gate: the SIMD (or fused) inner loop
    // must out-run the reference loop at the serving batch size.
    auto rateAt = [&](const char *kernel, std::size_t batch) {
        double rate = 0.0;
        for (const Point &p : points)
            if (p.kernel == kernel && p.batch == batch)
                rate = std::max(rate, p.frames_per_sec);
        return rate;
    };
    const double reference_64 = rateAt("reference", 64);
    const double vector_64 = rateAt("vector", 64);
    const double fused_64 = rateAt("fused", 64);
    std::cout << "batch 64: reference " << reference_64
              << " f/s, vector " << vector_64 << " f/s, fused "
              << fused_64 << " f/s\n";
    // With real SIMD lanes this is a hard regression gate; on a box
    // whose dispatch fell back to the portable scalar loop the dense
    // sweep can legitimately lose to the sparse gather, so only warn.
    const bool have_simd =
        std::string(core::kernel::simdIsaName()) != "scalar";
    fatal_if(have_simd && std::max(vector_64, fused_64) <= reference_64,
             "neither vector nor fused beat the reference kernel at "
             "batch 64 despite %s lanes",
             core::kernel::simdIsaName());
    if (std::max(vector_64, fused_64) <= reference_64)
        std::cout << "WARNING: neither vector nor fused beat the "
                     "reference kernel at batch 64 (scalar fallback "
                     "dispatch)\n";

    bench::Json throughput_points = bench::Json::array();
    for (const Point &p : points) {
        bench::Json point;
        point.set("kernel", p.kernel)
            .set("residency", p.residency)
            .set("batch", p.batch)
            .set("threads", p.threads)
            .set("frames_per_sec", p.frames_per_sec)
            .set("gops", p.gops)
            .set("speedup", p.speedup)
            .set("bit_exact", p.bit_exact)
            .set("resident_stream_bytes", p.resident_stream_bytes)
            .set("bytes_per_nonzero", p.bytes_per_nonzero);
        throughput_points.push(std::move(point));
    }
    bench::Json scalar_json;
    scalar_json.set("frames_per_sec", scalar_fps)
        .set("gops", useful_gops / scalar_s);
    bench::Json batch64_json;
    batch64_json.set("reference_fps", reference_64)
        .set("vector_fps", vector_64)
        .set("fused_fps", fused_64)
        .set("best_over_reference",
             reference_64 > 0.0
                 ? std::max(vector_64, fused_64) / reference_64
                 : 0.0);
    // The footprint story: compressed residency must shrink the
    // resident stream bytes of this paper-shaped FC layer by at
    // least 1.8x. Pure byte accounting — deterministic, so a hard
    // gate on every box.
    const double compression_ratio = compressed_stack_bytes > 0
        ? static_cast<double>(decoded_stack_bytes) /
            static_cast<double>(compressed_stack_bytes)
        : 0.0;
    std::cout << "resident streams: decoded " << decoded_stack_bytes
              << " B, compressed " << compressed_stack_bytes
              << " B (" << compression_ratio << "x, "
              << static_cast<double>(compressed_stack_bytes) /
            static_cast<double>(stack_entries)
              << " B/nonzero)\n";
    fatal_if(compression_ratio < 1.8,
             "compressed residency only shrank the resident streams "
             "%.2fx (< 1.8x) on the paper FC shape",
             compression_ratio);

    bench::Json compression_json;
    compression_json.set("decoded_stream_bytes", decoded_stack_bytes)
        .set("compressed_stream_bytes", compressed_stack_bytes)
        .set("nonzero_entries", stack_entries)
        .set("ratio", compression_ratio);

    bench::Json throughput_json;
    throughput_json.set("layer", layerJson(config, act_density))
        .set("frames", kFrames)
        .set("scalar", std::move(scalar_json))
        .set("points", std::move(throughput_points))
        .set("best_speedup", best)
        .set("batch64_by_kernel", std::move(batch64_json))
        .set("compression", std::move(compression_json));

    // ---- Part 1b: batch-1 latency vs activation density (NT-We) -----

    // The paper's activation-sparsity win is a batch-1 latency story:
    // one frame at a time, the actsparse queue walk touching only the
    // nonzero columns. Sweep density 5%..100% on the NT-We shape and
    // time reference/fused/actsparse a single frame at a time.
    workloads::SuiteRunner suite_runner(2016);
    const workloads::Benchmark &ntwe = workloads::findBenchmark("NT-We");
    const auto ntwe_plan = suite_runner.plan(ntwe, config);
    const std::vector<const core::LayerPlan *> ntwe_stack{&ntwe_plan};
    const auto ntwe_compiled =
        engine::compileLayerStack(config, ntwe_stack);
    const auto ntwe_scalar =
        engine::makeBackend("scalar", config, {&ntwe_plan});

    struct DensityPoint
    {
        double density = 0.0;
        std::string kernel;
        double mean_us = 0.0;
        double frames_per_sec = 0.0;
    };
    const std::vector<double> densities{0.05, 0.15, 0.25, 0.35,
                                        0.50, 0.75, 1.00};
    const std::vector<core::kernel::KernelVariant> density_variants{
        core::kernel::KernelVariant::Reference,
        core::kernel::KernelVariant::Fused,
        core::kernel::KernelVariant::ActSparse,
    };

    std::vector<DensityPoint> density_points;
    double fused_at_35 = 0.0;
    double actsparse_at_35 = 0.0;
    for (const double density : densities) {
        // Fresh frames at this exact density, plus one oracle pass.
        std::vector<core::kernel::Batch> singles;
        for (std::size_t b = 0; b < kDensityFrames; ++b) {
            Rng frame_rng(31000 + 101 * b +
                          static_cast<std::uint64_t>(1000 * density));
            singles.push_back({model.quantizeInput(nn::makeActivations(
                ntwe.input, density, frame_rng))});
        }
        std::vector<core::kernel::Batch> oracle;
        for (const auto &single : singles)
            oracle.push_back(ntwe_scalar->runBatch(single).outputs);

        double fused_fps = 0.0;
        double actsparse_fps = 0.0;
        for (const core::kernel::KernelVariant kernel :
             density_variants) {
            engine::CompiledBackend backend(ntwe_stack, ntwe_compiled,
                                            1, kernel);
            double best_s = 0.0;
            for (unsigned rep = 0; rep < kDensityRepeats; ++rep) {
                std::vector<core::kernel::Batch> outputs;
                outputs.reserve(kDensityFrames);
                const auto start = std::chrono::steady_clock::now();
                for (const auto &single : singles)
                    outputs.push_back(backend.runBatch(single).outputs);
                const double elapsed = seconds(start);
                best_s =
                    rep == 0 ? elapsed : std::min(best_s, elapsed);
                fatal_if(outputs != oracle,
                         "kernel '%s' diverged from the scalar oracle "
                         "at %.0f%% activation density",
                         core::kernel::kernelVariantName(kernel),
                         100.0 * density);
            }
            DensityPoint p;
            p.density = density;
            p.kernel = core::kernel::kernelVariantName(kernel);
            p.mean_us = 1e6 * best_s / kDensityFrames;
            p.frames_per_sec = kDensityFrames / best_s;
            if (kernel == core::kernel::KernelVariant::Fused)
                fused_fps = p.frames_per_sec;
            if (kernel == core::kernel::KernelVariant::ActSparse)
                actsparse_fps = p.frames_per_sec;
            density_points.push_back(std::move(p));
        }

        if (density == 0.35) {
            fused_at_35 = fused_fps;
            actsparse_at_35 = actsparse_fps;
        }
        // The sparsity gate: wherever at least half the activations
        // are zero, skipping them must win (SIMD boxes only — a
        // scalar-dispatch box can legitimately be memory-bound enough
        // that the queue build dominates).
        fatal_if(have_simd && density <= 0.50 &&
                     actsparse_fps <= fused_fps,
                 "actsparse (%.1f f/s) did not beat fused (%.1f f/s) "
                 "at batch 1, %.0f%% activation density",
                 actsparse_fps, fused_fps, 100.0 * density);
    }

    TextTable density_table(
        {"Density", "Kernel", "Mean us/frame", "Frames/s"});
    for (const DensityPoint &p : density_points) {
        density_table.row()
            .add(100.0 * p.density, 0)
            .add(p.kernel)
            .add(p.mean_us, 1)
            .add(p.frames_per_sec, 1);
    }
    std::cout << "\nNT-We (" << ntwe.input << "x" << ntwe.output
              << ", 10% weights), batch 1, 1 thread, "
              << kDensityFrames << " frames per density\n";
    density_table.print(std::cout);
    const double actsparse_speedup_35 =
        fused_at_35 > 0.0 ? actsparse_at_35 / fused_at_35 : 0.0;
    std::cout << "actsparse over fused at 35% density: "
              << actsparse_speedup_35 << "x\n";

    bench::Json density_series = bench::Json::array();
    for (const DensityPoint &p : density_points) {
        bench::Json point;
        point.set("act_density", p.density)
            .set("kernel", p.kernel)
            .set("mean_us_per_frame", p.mean_us)
            .set("frames_per_sec", p.frames_per_sec);
        density_series.push(std::move(point));
    }
    // Paper Table III activation densities for the NeuralTalk rows,
    // stamped so the series can be read against the published numbers.
    bench::Json paper_density;
    for (const char *name : {"NT-We", "NT-Wd", "NT-LSTM"})
        paper_density.set(name,
                          workloads::findBenchmark(name).act_density);
    bench::Json density_json;
    density_json.set("workload", "NT-We")
        .set("input", ntwe.input)
        .set("output", ntwe.output)
        .set("weight_density", ntwe.weight_density)
        .set("frames", kDensityFrames)
        .set("threads", 1u)
        .set("batch", std::uint64_t{1})
        .set("points", std::move(density_series))
        .set("actsparse_over_fused_at_35pct", actsparse_speedup_35)
        .set("paper_act_density", std::move(paper_density));
    throughput_json.set("batch1_density_series",
                        std::move(density_json));

    // ---- Part 1c: decoded vs compressed residency on NT-We ----------

    // The roofline rule made measurable: NT-We's decoded streams fit
    // the LLC, so this is the *worst* case for decode-on-the-fly —
    // the decode is pure added work with no DRAM traffic to save.
    // Even here the compressed-resident path must stay within 15% of
    // decoded at batch 64 (the decode amortizes over the batch);
    // batch 1 is stamped unguarded to document the amortization.
    core::kernel::CompileOptions ntwe_compressed_options;
    ntwe_compressed_options.residency =
        core::kernel::Residency::Compressed;
    const auto ntwe_compressed_stack = engine::compileLayerStack(
        config, ntwe_stack, ntwe_compressed_options);

    core::kernel::Batch ntwe_frames;
    for (std::size_t b = 0; b < kFrames; ++b) {
        Rng frame_rng(52000 + 77 * b);
        ntwe_frames.push_back(model.quantizeInput(
            nn::makeActivations(ntwe.input, kActDensity, frame_rng)));
    }
    const core::kernel::Batch ntwe_reference =
        ntwe_scalar->runBatch(ntwe_frames).outputs;

    struct ResidencyPoint
    {
        std::string residency;
        std::size_t batch = 0;
        double frames_per_sec = 0.0;
        std::uint64_t resident_stream_bytes = 0;
    };
    std::vector<ResidencyPoint> residency_points;
    double decoded_fps_64 = 0.0;
    double compressed_fps_64 = 0.0;
    for (const auto &form :
         {std::make_pair(ntwe_compiled, "decoded"),
          std::make_pair(ntwe_compressed_stack, "compressed")}) {
        const engine::CompiledBackend backend(ntwe_stack, form.first,
                                              1);
        for (const std::size_t batch :
             {std::size_t{1}, std::size_t{64}}) {
            core::kernel::Batch outputs;
            double best_s = 0.0;
            for (unsigned rep = 0; rep < kDensityRepeats; ++rep) {
                outputs.clear();
                const auto start = std::chrono::steady_clock::now();
                for (std::size_t at = 0; at < kFrames; at += batch) {
                    const core::kernel::Batch chunk(
                        ntwe_frames.begin() + at,
                        ntwe_frames.begin() +
                            std::min(at + batch, kFrames));
                    auto out = backend.runBatch(chunk).outputs;
                    for (auto &frame_out : out)
                        outputs.push_back(std::move(frame_out));
                }
                const double elapsed = seconds(start);
                best_s =
                    rep == 0 ? elapsed : std::min(best_s, elapsed);
            }
            fatal_if(outputs != ntwe_reference,
                     "%s-resident NT-We run diverged from the scalar "
                     "oracle at batch %zu",
                     form.second, batch);
            ResidencyPoint p;
            p.residency = form.second;
            p.batch = batch;
            p.frames_per_sec = kFrames / best_s;
            p.resident_stream_bytes =
                stackResidentBytes(*form.first);
            if (batch == 64) {
                if (p.residency == "decoded")
                    decoded_fps_64 = p.frames_per_sec;
                else
                    compressed_fps_64 = p.frames_per_sec;
            }
            residency_points.push_back(std::move(p));
        }
    }

    TextTable residency_table(
        {"Residency", "Batch", "Frames/s", "Resident KB"});
    for (const ResidencyPoint &p : residency_points) {
        residency_table.row()
            .add(p.residency)
            .add(static_cast<std::uint64_t>(p.batch))
            .add(p.frames_per_sec, 1)
            .add(static_cast<double>(p.resident_stream_bytes) /
                     1024.0,
                 1);
    }
    std::cout << "\nNT-We residency, 1 thread, auto kernel, "
              << kFrames << " frames\n";
    residency_table.print(std::cout);
    const double residency_cost_64 = decoded_fps_64 > 0.0
        ? compressed_fps_64 / decoded_fps_64
        : 0.0;
    std::cout << "compressed/decoded throughput at batch 64: "
              << residency_cost_64 << "x\n";
    // The batch-64 gate: decode amortized over the batch must keep
    // compressed within 15% of decoded even with the streams in
    // cache. Scalar-dispatch boxes only warn — their MAC loops are
    // slow enough that the ratio is noise-dominated either way.
    fatal_if(have_simd && residency_cost_64 < 0.85,
             "compressed residency cost %.1f%% at batch 64 exceeds "
             "the 15%% bound on the in-cache NT-We case",
             100.0 * (1.0 - residency_cost_64));
    if (residency_cost_64 < 0.85)
        std::cout << "WARNING: compressed residency lost more than "
                     "15% at batch 64 (scalar fallback dispatch)\n";

    bench::Json residency_series = bench::Json::array();
    for (const ResidencyPoint &p : residency_points) {
        bench::Json point;
        point.set("residency", p.residency)
            .set("batch", p.batch)
            .set("frames_per_sec", p.frames_per_sec)
            .set("resident_stream_bytes", p.resident_stream_bytes);
        residency_series.push(std::move(point));
    }
    bench::Json residency_json;
    residency_json.set("workload", "NT-We")
        .set("threads", 1u)
        .set("kernel", "auto")
        .set("act_density", kActDensity)
        .set("frames", kFrames)
        .set("points", std::move(residency_series))
        .set("compressed_over_decoded_at_batch64",
             residency_cost_64);
    throughput_json.set("residency_series",
                        std::move(residency_json));
    bench::writeBenchJson(throughput_path, throughput_json);

    // ---- Part 2: serving latency vs offered load --------------------

    // Serial single-vector baseline: the latency-optimal (batch 1)
    // path a server without a micro-batcher would run.
    const auto serial =
        engine::makeBackend("compiled", config, {&plan});
    double serial_s = 0.0;
    for (unsigned rep = 0; rep < kRepeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < 16; ++i)
            serial->run(frames[i % kFrames]);
        const double elapsed = seconds(start);
        serial_s = rep == 0 ? elapsed : std::min(serial_s, elapsed);
    }
    const double serial_rps = 16.0 / serial_s;

    engine::ServerOptions server_options;
    server_options.max_batch = 16;
    server_options.max_delay = std::chrono::microseconds(500);

    std::vector<ServePoint> serve_points;
    for (const double load : {0.5, 1.0, 2.0, 4.0}) {
        engine::InferenceServer server(
            engine::makeBackend("compiled", config, {&plan},
                                hw_threads),
            server_options);

        const double offered_rps = load * serial_rps;
        Rng arrival_rng(7000 + static_cast<std::uint64_t>(10 * load));
        const std::vector<double> arrival_s =
            engine::openLoopArrivals(kServeRequests, offered_rps,
                                     arrival_rng);

        const auto start = std::chrono::steady_clock::now();
        std::vector<std::future<std::vector<std::int64_t>>> futures;
        futures.reserve(kServeRequests);
        for (std::size_t i = 0; i < kServeRequests; ++i) {
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(arrival_s[i]));
            futures.push_back(server.submit(frames[i % kFrames]));
        }
        for (std::size_t i = 0; i < kServeRequests; ++i)
            fatal_if(futures[i].get() != reference[i % kFrames],
                     "served request %zu diverged from the scalar "
                     "oracle", i);
        const double wall_s = seconds(start);
        server.stop();

        const engine::ServerStats stats = server.stats();
        ServePoint p;
        p.load_factor = load;
        p.offered_rps = offered_rps;
        p.achieved_rps = static_cast<double>(stats.requests) / wall_s;
        p.p50_us = stats.p50_latency_us;
        p.p99_us = stats.p99_latency_us;
        p.mean_batch = stats.mean_batch;
        p.max_depth = stats.max_queue_depth;
        serve_points.push_back(p);
    }

    TextTable serve_table({"Load", "Offered r/s", "Achieved r/s",
                           "p50 us", "p99 us", "Mean batch",
                           "Max depth"});
    for (const ServePoint &p : serve_points) {
        serve_table.row()
            .add(p.load_factor, 1)
            .add(p.offered_rps, 1)
            .add(p.achieved_rps, 1)
            .add(p.p50_us, 1)
            .add(p.p99_us, 1)
            .add(p.mean_batch, 2)
            .add(static_cast<std::uint64_t>(p.max_depth));
    }
    std::cout << "\nInferenceServer, open-loop arrivals, max batch "
              << server_options.max_batch << ", forming deadline "
              << server_options.max_delay.count() << " us; serial "
              << "single-vector capacity " << serial_rps << " r/s\n";
    serve_table.print(std::cout);

    const double peak_served = serve_points.back().achieved_rps;
    std::cout << "served throughput at " << serve_points.back().load_factor
              << "x load: " << peak_served << " r/s ("
              << peak_served / serial_rps << "x serial)\n";

    bench::Json serving_points = bench::Json::array();
    for (const ServePoint &p : serve_points) {
        bench::Json point;
        point.set("load_factor", p.load_factor)
            .set("offered_rps", p.offered_rps)
            .set("achieved_rps", p.achieved_rps)
            .set("p50_latency_us", p.p50_us)
            .set("p99_latency_us", p.p99_us)
            .set("mean_batch", p.mean_batch)
            .set("max_queue_depth", p.max_depth);
        serving_points.push(std::move(point));
    }
    bench::Json server_json;
    server_json.set("backend", "compiled")
        .set("kernel", "auto")
        .set("threads", hw_threads)
        .set("max_batch", server_options.max_batch)
        .set("max_delay_us",
             static_cast<std::uint64_t>(
                 server_options.max_delay.count()));
    bench::Json serving_json;
    serving_json.set("layer", layerJson(config, act_density))
        .set("requests", kServeRequests)
        .set("serial_rps", serial_rps)
        .set("server", std::move(server_json))
        .set("points", std::move(serving_points))
        .set("peak_served_rps", peak_served)
        .set("peak_over_serial", peak_served / serial_rps);
    // ---- Part 3: overload with and without shedding -----------------

    // A batch-1 server pins capacity at the serial single-vector rate,
    // so "2x load" is genuine overload rather than more batching
    // headroom. Three runs: 1x load unbounded (the reference p99), 2x
    // load unbounded (the queue blowup), 2x load with admission
    // control (the shed series the resilience layer exists for).
    struct OverloadConfig
    {
        const char *label;
        double load;
        std::size_t max_queue;
    };
    const std::vector<OverloadConfig> overload_configs{
        {"1x unbounded", 1.0, 0},
        {"2x unbounded", 2.0, 0},
        {"2x shedding", 2.0, 4},
    };

    std::vector<OverloadPoint> overload_points;
    for (const OverloadConfig &config_point : overload_configs) {
        engine::ServerOptions overload_options;
        overload_options.max_batch = 1;
        overload_options.max_delay = std::chrono::microseconds(50);
        overload_options.max_queue = config_point.max_queue;
        overload_options.shed_policy = engine::ShedPolicy::RejectNew;
        engine::InferenceServer server(
            engine::makeBackend("compiled", config, {&plan}),
            overload_options);

        const double offered_rps = config_point.load * serial_rps;
        Rng arrival_rng(9000 +
                        static_cast<std::uint64_t>(
                            10 * config_point.load +
                            config_point.max_queue));
        const std::vector<double> arrival_s =
            engine::openLoopArrivals(kServeRequests, offered_rps,
                                     arrival_rng);

        const auto start = std::chrono::steady_clock::now();
        std::vector<std::future<std::vector<std::int64_t>>> futures;
        futures.reserve(kServeRequests);
        for (std::size_t i = 0; i < kServeRequests; ++i) {
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(arrival_s[i]));
            futures.push_back(server.submit(frames[i % kFrames]));
        }
        std::uint64_t accepted = 0;
        std::uint64_t shed = 0;
        for (std::size_t i = 0; i < kServeRequests; ++i) {
            try {
                fatal_if(futures[i].get() != reference[i % kFrames],
                         "overloaded request %zu diverged from the "
                         "scalar oracle", i);
                ++accepted;
            } catch (const engine::ServerOverloaded &) {
                ++shed;
            }
        }
        const double wall_s = seconds(start);
        server.stop();

        const engine::ServerStats stats = server.stats();
        fatal_if(stats.requests_shed != shed,
                 "server counted %llu shed requests but %llu futures "
                 "failed with ServerOverloaded",
                 static_cast<unsigned long long>(stats.requests_shed),
                 static_cast<unsigned long long>(shed));
        fatal_if(config_point.max_queue == 0 && shed != 0,
                 "unbounded server shed %llu requests",
                 static_cast<unsigned long long>(shed));

        OverloadPoint p;
        p.label = config_point.label;
        p.load_factor = config_point.load;
        p.max_queue = config_point.max_queue;
        p.offered_rps = offered_rps;
        p.accepted = accepted;
        p.shed = shed;
        p.achieved_rps = static_cast<double>(accepted) / wall_s;
        p.p50_us = stats.p50_latency_us;
        p.p99_us = stats.p99_latency_us;
        p.max_depth = stats.max_queue_depth;
        overload_points.push_back(p);
    }

    TextTable overload_table({"Series", "Load", "Max queue",
                              "Accepted", "Shed", "Achieved r/s",
                              "p50 us", "p99 us", "Max depth"});
    for (const OverloadPoint &p : overload_points) {
        overload_table.row()
            .add(p.label)
            .add(p.load_factor, 1)
            .add(static_cast<std::uint64_t>(p.max_queue))
            .add(p.accepted)
            .add(p.shed)
            .add(p.achieved_rps, 1)
            .add(p.p50_us, 1)
            .add(p.p99_us, 1)
            .add(static_cast<std::uint64_t>(p.max_depth));
    }
    std::cout << "\nOverload (batch-1 server, capacity = serial rate, "
              << kServeRequests << " requests):\n";
    overload_table.print(std::cout);

    const double baseline_p99 = overload_points[0].p99_us;
    const double blowup_p99 = overload_points[1].p99_us;
    const double shed_p99 = overload_points[2].p99_us;
    const double blowup_ratio =
        baseline_p99 > 0.0 ? blowup_p99 / baseline_p99 : 0.0;
    const double shed_ratio =
        baseline_p99 > 0.0 ? shed_p99 / baseline_p99 : 0.0;
    std::cout << "2x-load p99 over 1x-load p99: unbounded "
              << blowup_ratio << "x, with shedding " << shed_ratio
              << "x (" << overload_points[2].shed << " of "
              << kServeRequests << " requests shed)\n";
    if (shed_ratio > 3.0)
        std::cout << "WARNING: accepted-request p99 under shedding "
                     "exceeded 3x the 1x-load p99\n";

    bench::Json overload_series = bench::Json::array();
    for (const OverloadPoint &p : overload_points) {
        bench::Json point;
        point.set("series", p.label)
            .set("load_factor", p.load_factor)
            .set("max_queue", p.max_queue)
            .set("offered_rps", p.offered_rps)
            .set("accepted", p.accepted)
            .set("shed", p.shed)
            .set("achieved_rps", p.achieved_rps)
            .set("p50_latency_us", p.p50_us)
            .set("p99_latency_us", p.p99_us)
            .set("max_queue_depth", p.max_depth);
        overload_series.push(std::move(point));
    }
    bench::Json overload_json;
    overload_json.set("max_batch", std::uint64_t{1})
        .set("shed_policy", "reject_new")
        .set("points", std::move(overload_series))
        .set("p99_blowup_unbounded", blowup_ratio)
        .set("p99_ratio_with_shedding", shed_ratio);
    serving_json.set("overload", std::move(overload_json));
    bench::writeBenchJson(serving_path, serving_json);
    return 0;
}
