/**
 * @file
 * Throughput of the compiled batched execution path vs. the scalar
 * functional interpreter on a pruned 4096x4096 layer (Alex-7's shape:
 * 9% weight density, 35% activation density, 64 PEs).
 *
 * Sweeps batch size x worker threads over a fixed set of frames,
 * checks every configuration bit-exact against the scalar oracle, and
 * writes BENCH_throughput.json (frames/sec and GOP/s per point) so
 * later PRs have a perf trajectory to regress against. Run from the
 * build directory:
 *
 *   ./bench_throughput_batched [output.json]
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "compress/compressed_layer.hh"
#include "core/functional.hh"
#include "core/kernel/compiled_layer.hh"
#include "core/kernel/executor.hh"
#include "core/kernel/worker_pool.hh"
#include "core/plan.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;

constexpr std::size_t kRows = 4096;
constexpr std::size_t kCols = 4096;
constexpr double kWeightDensity = 0.09;
constexpr double kActDensity = 0.35;
constexpr std::size_t kFrames = 64;
constexpr unsigned kRepeats = 3;

struct Point
{
    std::size_t batch = 0;
    unsigned threads = 0;
    double frames_per_sec = 0.0;
    double gops = 0.0;
    double speedup = 0.0;
    bool bit_exact = false;
};

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_throughput.json";

    // Build the layer and plan once.
    Rng rng(2016);
    nn::WeightGenOptions wopts;
    wopts.density = kWeightDensity;
    compress::CompressionOptions copts;
    copts.interleave.n_pe = 64;
    const auto layer = compress::CompressedLayer::compress(
        "alex7_shape", nn::makeSparseWeights(kRows, kCols, wopts, rng),
        copts);

    core::EieConfig config;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel model(config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);

    core::kernel::Batch frames;
    for (std::size_t b = 0; b < kFrames; ++b) {
        Rng frame_rng(4096 + 77 * b);
        frames.push_back(model.quantizeInput(
            nn::makeActivations(kCols, kActDensity, frame_rng)));
    }

    // Scalar interpreter baseline over all frames (the oracle).
    core::kernel::Batch reference;
    double useful_gops = 0.0;
    double scalar_s = 0.0;
    for (unsigned rep = 0; rep < kRepeats; ++rep) {
        reference.clear();
        useful_gops = 0.0;
        const auto start = std::chrono::steady_clock::now();
        for (const auto &frame : frames) {
            auto result = model.run(plan, frame);
            useful_gops += result.work.usefulGops();
            reference.push_back(std::move(result.output_raw));
        }
        const double elapsed = seconds(start);
        scalar_s = rep == 0 ? elapsed : std::min(scalar_s, elapsed);
    }
    const double scalar_fps = kFrames / scalar_s;

    const unsigned hw_threads =
        core::kernel::WorkerPool::hardwareThreads();
    std::vector<unsigned> thread_counts{1};
    if (hw_threads > 1)
        thread_counts.push_back(hw_threads);

    std::vector<Point> points;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}, std::size_t{64}}) {
        for (const unsigned threads : thread_counts) {
            core::kernel::WorkerPool pool(threads);
            core::kernel::WorkerPool *pool_ptr =
                threads > 1 ? &pool : nullptr;

            core::kernel::Batch outputs;
            double batched_s = 0.0;
            for (unsigned rep = 0; rep < kRepeats; ++rep) {
                outputs.clear();
                const auto start = std::chrono::steady_clock::now();
                for (std::size_t at = 0; at < kFrames; at += batch) {
                    const core::kernel::Batch chunk(
                        frames.begin() + at,
                        frames.begin() +
                            std::min(at + batch, kFrames));
                    auto out =
                        core::kernel::runBatch(compiled, chunk,
                                               pool_ptr);
                    for (auto &frame_out : out)
                        outputs.push_back(std::move(frame_out));
                }
                const double elapsed = seconds(start);
                batched_s =
                    rep == 0 ? elapsed : std::min(batched_s, elapsed);
            }

            Point p;
            p.batch = batch;
            p.threads = threads;
            p.frames_per_sec = kFrames / batched_s;
            p.gops = useful_gops / batched_s;
            p.speedup = scalar_s / batched_s;
            p.bit_exact = outputs == reference;
            fatal_if(!p.bit_exact,
                     "batch %zu x %u threads diverged from the scalar "
                     "oracle", batch, threads);
            points.push_back(p);
        }
    }

    TextTable table({"Batch", "Threads", "Frames/s", "GOP/s", "Speedup",
                     "Exact"});
    table.row()
        .add("scalar")
        .add(std::uint64_t{1})
        .add(scalar_fps, 1)
        .add(useful_gops / scalar_s, 3)
        .add(1.0, 2)
        .add("ref");
    for (const Point &p : points) {
        table.row()
            .add(static_cast<std::uint64_t>(p.batch))
            .add(static_cast<std::uint64_t>(p.threads))
            .add(p.frames_per_sec, 1)
            .add(p.gops, 3)
            .add(p.speedup, 2)
            .add(p.bit_exact ? "yes" : "NO");
    }
    std::cout << "4096x4096, 9% weights, 35% activations, 64 PEs, "
              << kFrames << " frames\n";
    table.print(std::cout);

    double best = 0.0;
    for (const Point &p : points)
        best = std::max(best, p.speedup);
    std::cout << "best speedup over scalar interpreter: " << best
              << "x\n";

    std::ofstream json(json_path);
    fatal_if(!json, "cannot write %s", json_path.c_str());
    json << "{\n"
         << "  \"layer\": {\"rows\": " << kRows << ", \"cols\": "
         << kCols << ", \"weight_density\": " << kWeightDensity
         << ", \"act_density\": " << kActDensity
         << ", \"n_pe\": " << config.n_pe << "},\n"
         << "  \"frames\": " << kFrames << ",\n"
         << "  \"scalar\": {\"frames_per_sec\": " << scalar_fps
         << ", \"gops\": " << useful_gops / scalar_s << "},\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        json << "    {\"batch\": " << p.batch << ", \"threads\": "
             << p.threads << ", \"frames_per_sec\": "
             << p.frames_per_sec << ", \"gops\": " << p.gops
             << ", \"speedup\": " << p.speedup << ", \"bit_exact\": "
             << (p.bit_exact ? "true" : "false") << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"best_speedup\": " << best << "\n"
         << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
